//! The campaign service: accept loop, router, job queue, worker pool, and
//! graceful lifecycle.
//!
//! # Architecture
//!
//! One thread owns the (nonblocking) listener and handles connections
//! inline — requests are tiny and every handler is lock-bounded, so a
//! single HTTP lane plus [`crate::http::READ_TIMEOUT`] keeps the transport
//! simple and starvation-free. Campaign execution happens on a separate
//! pool of `workers` threads feeding from a bounded queue; the engine's
//! determinism guarantees mean a job's digests are identical no matter
//! which worker runs it or how the queue interleaved.
//!
//! # Lifecycle
//!
//! Shutdown is cooperative: a SIGTERM/SIGINT (via [`crate::signal`]) or a
//! [`ShutdownHandle`] raises a flag; the accept loop stops accepting, every
//! job's [`CancelToken`] fires, workers finish the trial in flight, record
//! partial results, drain the queue as cancelled, and join. `run` then
//! returns `Ok(())` so the process can exit 0.

use crate::http::{read_request, RecvError, Request, Response};
use crate::job::{Job, JobOutcome, JobSpec, JobStatus};
use crate::json::Json;
use crate::metrics::{LiveView, Metrics};
use crate::signal;
use apf_bench::engine::{CampaignReport, Engine};
use apf_trace::escape_json_str;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the server is shaped; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (concurrent campaigns).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Engine threads per job (1 = sequential trials; digests are identical
    /// for any value).
    pub engine_jobs: usize,
    /// Maximum jobs retained in memory (terminal jobs stay queryable);
    /// reaching it rejects new submissions with 429.
    pub max_jobs: usize,
    /// Emit a JSONL request-log line to stderr per request.
    pub log_requests: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 16,
            engine_jobs: 1,
            max_jobs: 4096,
            log_requests: false,
        }
    }
}

/// Cancels a running server from another thread (tests, embedders). The
/// process-level SIGTERM/SIGINT path sets the same kind of flag.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown; `Server::run` drains and returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Release);
    }
}

struct JobTable {
    next_id: u64,
    all: BTreeMap<u64, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
}

struct Shared {
    cfg: ServerConfig,
    metrics: Metrics,
    jobs: Mutex<JobTable>,
    queue_cv: Condvar,
    shutdown: Arc<AtomicBool>,
    running: AtomicUsize,
    started: Instant,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || signal::shutdown_requested()
    }

    fn lock_jobs(&self) -> MutexGuard<'_, JobTable> {
        // apf-lint: allow(panic-policy) — poisoning means a handler panicked; propagate the bug
        self.jobs.lock().expect("job table lock poisoned")
    }

    fn live_view(&self) -> LiveView {
        let (queued, snaps): (usize, Vec<_>) = {
            let t = self.lock_jobs();
            (t.queue.len(), t.all.values().map(|j| j.live.snapshot()).collect())
        };
        let mut view = LiveView {
            queued,
            running: self.running.load(Ordering::Relaxed),
            workers: self.cfg.workers,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            ..LiveView::default()
        };
        for s in snaps {
            view.trials += s.trials;
            view.formed += s.formed;
            view.cycles += s.cycles;
            view.bits += s.bits;
            view.busy_secs += s.busy.as_secs_f64();
        }
        let budget = view.uptime_secs * self.cfg.workers as f64;
        view.utilization = if budget > 0.0 { (view.busy_secs / budget).min(1.0) } else { 0.0 };
        view
    }
}

/// The bound service; [`Server::run`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the (not yet running) service.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration errors.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                cfg,
                metrics: Metrics::default(),
                jobs: Mutex::new(JobTable {
                    next_id: 1,
                    all: BTreeMap::new(),
                    queue: VecDeque::new(),
                }),
                queue_cv: Condvar::new(),
                shutdown: Arc::new(AtomicBool::new(false)),
                running: AtomicUsize::new(0),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until SIGTERM/SIGINT or a [`ShutdownHandle`] fires, then
    /// drains: running trials finish (cooperative cancel at the next trial
    /// boundary), queued jobs cancel, workers join.
    ///
    /// # Errors
    ///
    /// Propagates listener errors other than `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.cfg.workers.max(1) {
                scope.spawn(|| worker_loop(shared));
            }

            let result = loop {
                if shared.is_shutdown() {
                    break Ok(());
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => handle_connection(shared, stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => break Err(e),
                }
            };

            // Drain: cancel everything, wake the workers, let them finish.
            shared.shutdown.store(true, Ordering::Release);
            {
                let t = shared.lock_jobs();
                for job in t.all.values() {
                    if !job.status().is_terminal() {
                        job.cancel.cancel();
                    }
                }
            }
            shared.queue_cv.notify_all();
            result
            // scope joins the workers here
        })
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut t = shared.lock_jobs();
            loop {
                if let Some(job) = t.queue.pop_front() {
                    break Some(job);
                }
                if shared.is_shutdown() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(t, Duration::from_millis(100))
                    // apf-lint: allow(panic-policy) — poisoning means a handler panicked; propagate
                    .expect("job table lock poisoned");
                t = guard;
            }
        };
        let Some(job) = job else { return };

        if !job.start() {
            shared.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        shared.running.fetch_add(1, Ordering::Relaxed);
        let campaign = job.spec.to_campaign();
        let engine = Engine::new()
            .jobs(shared.cfg.engine_jobs.max(1))
            .trace_digests(true)
            .cancel_token(job.cancel.clone())
            .live_stats(Arc::clone(&job.live));
        // The spec was fully validated at submission, so the engine cannot
        // reject an instance; catch_unwind turns any residual bug into a
        // Failed job instead of a dead worker.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(&campaign)));
        shared.running.fetch_sub(1, Ordering::Relaxed);

        match outcome {
            Ok(report) => {
                shared.metrics.fold_report(&report.stats, report.longest_trial.map(|(_, d)| d));
                let status = if report.cancelled && report.trials < report.requested {
                    JobStatus::Cancelled
                } else {
                    JobStatus::Done
                };
                let counter = match status {
                    JobStatus::Cancelled => &shared.metrics.jobs_cancelled,
                    _ => &shared.metrics.jobs_done,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                job.finish(status, Some(outcome_of(&report)));
            }
            Err(_) => {
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                job.finish(JobStatus::Failed, None);
            }
        }
    }
}

fn outcome_of(report: &CampaignReport) -> JobOutcome {
    let agg = report.aggregate();
    JobOutcome {
        trials: report.trials,
        requested: report.requested,
        formed: report.stats.formed(),
        success: agg.success,
        mean_cycles: agg.mean_cycles,
        median_cycles: agg.median_cycles,
        p95_cycles: agg.p95_cycles,
        mean_bits: agg.mean_bits,
        bits_per_cycle: agg.bits_per_cycle,
        digests: report.digests.clone().unwrap_or_default(),
        wall_secs: report.wall.as_secs_f64(),
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let t0 = Instant::now();
    let (response, method, path) = match read_request(&mut stream) {
        Ok(req) => {
            let response = route(shared, &req);
            (response, req.method, req.path)
        }
        Err(err) => {
            let response = match err {
                RecvError::BadRequest(why) => Response::error(400, why),
                RecvError::HeadTooLarge => Response::error(400, "request head too large"),
                RecvError::BodyTooLarge => Response::error(413, "request body too large"),
                RecvError::Io(std::io::ErrorKind::WouldBlock) => {
                    Response::error(408, "read timeout")
                }
                RecvError::Io(_) => Response::error(400, "read error"),
            };
            (response, "-".to_string(), "-".to_string())
        }
    };
    shared.metrics.count_response(response.status);
    if shared.cfg.log_requests {
        log_request(&method, &path, response.status, t0.elapsed());
    }
    // The client may already be gone; nothing useful to do with the error.
    let _ = response.send(&mut stream);
}

/// One JSONL request-log line on stderr, with the attacker-controlled parts
/// (method, path) escaped through `apf-trace`'s JSON string escaper so the
/// log stream stays one parseable event per line.
fn log_request(method: &str, path: &str, status: u16, took: Duration) {
    let mut line = String::with_capacity(96);
    line.push_str("{\"ev\":\"http\",\"method\":\"");
    escape_json_str(method, &mut line);
    line.push_str("\",\"path\":\"");
    escape_json_str(path, &mut line);
    let _ = std::fmt::Write::write_fmt(
        &mut line,
        format_args!("\",\"status\":{status},\"micros\":{}}}", took.as_micros()),
    );
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            &Json::obj([
                ("status", Json::str("ok")),
                ("shutting_down", Json::Bool(shared.is_shutdown())),
            ]),
        ),
        ("GET", ["metrics"]) => {
            let body = shared.metrics.render(&shared.live_view());
            Response {
                status: 200,
                headers: Vec::new(),
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: body.into_bytes(),
            }
        }
        ("POST", ["jobs"]) => submit_job(shared, req),
        ("GET", ["jobs"]) => {
            let t = shared.lock_jobs();
            let list: Vec<Json> = t
                .all
                .values()
                .map(|j| {
                    Json::obj([("id", Json::u64(j.id)), ("status", Json::str(j.status().label()))])
                })
                .collect();
            Response::json(200, &Json::obj([("jobs", Json::Arr(list))]))
        }
        ("GET", ["jobs", id]) => {
            with_job(shared, id, |job| Response::json(200, &job.status_json()))
        }
        ("GET", ["jobs", id, "result"]) => with_job(shared, id, |job| {
            let status = job.status();
            match job.outcome() {
                Some(outcome) if status.is_terminal() => Response::json(
                    200,
                    &Json::obj([
                        ("id", Json::u64(job.id)),
                        ("status", Json::str(status.label())),
                        ("result", outcome.to_json()),
                    ]),
                ),
                _ if status.is_terminal() => Response::json(
                    200,
                    &Json::obj([("id", Json::u64(job.id)), ("status", Json::str(status.label()))]),
                ),
                _ => Response::error(409, "job not finished").header("Retry-After", "1"),
            }
        }),
        ("DELETE", ["jobs", id]) => with_job(shared, id, |job| {
            let status = job.request_cancel();
            Response::json(
                200,
                &Json::obj([("id", Json::u64(job.id)), ("status", Json::str(status.label()))]),
            )
        }),
        (_, ["healthz"] | ["metrics"] | ["jobs"] | ["jobs", _] | ["jobs", _, "result"]) => {
            Response::error(405, "method not allowed").header("Allow", "GET, POST, DELETE")
        }
        _ => Response::error(404, "no such route"),
    }
}

fn with_job(shared: &Shared, id: &str, f: impl FnOnce(&Job) -> Response) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(404, "job ids are integers");
    };
    let job = {
        let t = shared.lock_jobs();
        t.all.get(&id).cloned()
    };
    match job {
        Some(job) => f(&job),
        None => Response::error(404, "no such job"),
    }
}

fn submit_job(shared: &Shared, req: &Request) -> Response {
    if shared.is_shutdown() {
        return Response::error(503, "shutting down");
    }
    let spec = match JobSpec::from_json_bytes(&req.body) {
        Ok(spec) => spec,
        Err(why) => return Response::error(400, &why),
    };
    let job = {
        let mut t = shared.lock_jobs();
        if t.queue.len() >= shared.cfg.queue_depth || t.all.len() >= shared.cfg.max_jobs {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "queue full").header("Retry-After", "1");
        }
        let id = t.next_id;
        t.next_id += 1;
        let job = Arc::new(Job::new(id, spec));
        t.all.insert(id, Arc::clone(&job));
        t.queue.push_back(Arc::clone(&job));
        job
    };
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Response::json(202, &Json::obj([("id", Json::u64(job.id)), ("status", Json::str("queued"))]))
}
