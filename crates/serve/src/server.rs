//! The campaign service: accept loop, router, job queue, worker pool, and
//! graceful lifecycle.
//!
//! # Architecture
//!
//! One thread owns the (nonblocking) listener and handles connections
//! inline — requests are tiny and every handler is lock-bounded, so a
//! single HTTP lane plus [`crate::http::READ_TIMEOUT`] keeps the transport
//! simple and starvation-free. Campaign execution happens on a separate
//! pool of `workers` threads feeding from a bounded queue; the engine's
//! determinism guarantees mean a job's digests are identical no matter
//! which worker runs it or how the queue interleaved.
//!
//! # API surface
//!
//! The job API is versioned under `/v1/` (`POST /v1/jobs`,
//! `GET /v1/jobs/{id}`, `GET /v1/jobs/{id}/result`, `DELETE /v1/jobs/{id}`,
//! `GET|POST /v1/spec-digest`); the legacy unversioned `/jobs*` paths
//! answer `308 Permanent Redirect` with a `Location` header (308 preserves
//! method and body, so a legacy `POST /jobs` replays correctly). The
//! infrastructure endpoints `/healthz` and `/metrics` stay available both
//! bare and under `/v1/`.
//!
//! # Coordinator mode and the cache
//!
//! With backends configured ([`ServerConfig::coordinator`]), workers do not
//! run the engine: they shard each campaign across the backends and merge
//! the results bit-identically (see [`crate::coordinator`]). Independently,
//! cacheable submissions are answered from the content-addressed result
//! cache when the canonical-spec digest matches ([`crate::cache`]), with
//! every Nth hit re-verified by a replay job whose digests must match the
//! cached outcome.
//!
//! # Lifecycle
//!
//! Shutdown is cooperative: a SIGTERM/SIGINT (via [`crate::signal`]) or a
//! [`ShutdownHandle`] raises a flag; the accept loop stops accepting, every
//! job's [`apf_bench::engine::CancelToken`] fires, workers finish the trial
//! in flight, record
//! partial results, drain the queue as cancelled, and join. `run` then
//! returns `Ok(())` so the process can exit 0.

use crate::cache::{CacheConfig, ClientQuotas, ResultCache};
use crate::coordinator::{self, CoordinatorConfig};
use crate::http::{read_request, RecvError, Request, Response};
use crate::job::{Job, JobOutcome, JobSpec, JobStatus};
use crate::json::Json;
use crate::metrics::{LiveView, Metrics};
use crate::signal;
use crate::soak::SoakSpec;
use apf_bench::engine::{CampaignReport, Engine};
use apf_trace::escape_json_str;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the server is shaped; every knob has a CLI flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (concurrent campaigns).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with 429 + `Retry-After`.
    pub queue_depth: usize,
    /// Engine threads per job (1 = sequential trials; digests are identical
    /// for any value).
    pub engine_jobs: usize,
    /// Maximum jobs retained in memory (terminal jobs stay queryable);
    /// reaching it rejects new submissions with 429.
    pub max_jobs: usize,
    /// Emit a JSONL request-log line to stderr per request.
    pub log_requests: bool,
    /// Coordinator mode: non-empty `backends` makes workers shard campaigns
    /// across backend `apf-serve` processes instead of running the engine.
    pub coordinator: CoordinatorConfig,
    /// Content-addressed result cache (`max_entries == 0` disables it).
    pub cache: CacheConfig,
    /// Per-client submissions per minute (0 = unlimited).
    pub quota_per_minute: u64,
    /// Self-submit a timed soak job of this many seconds at startup
    /// (`serve --soak SECS`; 0 = off). The job runs through the normal
    /// queue, so it churns the same worker/cancellation/drain paths as an
    /// HTTP-submitted soak.
    pub soak_seconds: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 16,
            engine_jobs: 1,
            max_jobs: 4096,
            log_requests: false,
            coordinator: CoordinatorConfig::default(),
            cache: CacheConfig::default(),
            quota_per_minute: 0,
            soak_seconds: 0,
        }
    }
}

/// Cancels a running server from another thread (tests, embedders). The
/// process-level SIGTERM/SIGINT path sets the same kind of flag.
#[derive(Debug, Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests shutdown; `Server::run` drains and returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Release);
    }
}

struct JobTable {
    next_id: u64,
    all: BTreeMap<u64, Arc<Job>>,
    queue: VecDeque<Arc<Job>>,
}

struct Shared {
    cfg: ServerConfig,
    metrics: Metrics,
    jobs: Mutex<JobTable>,
    queue_cv: Condvar,
    cache: ResultCache,
    quotas: ClientQuotas,
    shutdown: Arc<AtomicBool>,
    running: AtomicUsize,
    started: Instant,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || signal::shutdown_requested()
    }

    fn coordinating(&self) -> bool {
        !self.cfg.coordinator.backends.is_empty()
    }

    fn cache_enabled(&self) -> bool {
        self.cfg.cache.max_entries > 0
    }

    fn lock_jobs(&self) -> MutexGuard<'_, JobTable> {
        // apf-lint: allow(panic-policy) — poisoning means a handler panicked; propagate the bug
        self.jobs.lock().expect("job table lock poisoned")
    }

    fn live_view(&self) -> LiveView {
        let (queued, snaps): (usize, Vec<_>) = {
            let t = self.lock_jobs();
            (t.queue.len(), t.all.values().map(|j| j.live.snapshot()).collect())
        };
        let mut view = LiveView {
            queued,
            running: self.running.load(Ordering::Relaxed),
            workers: self.cfg.workers,
            uptime_secs: self.started.elapsed().as_secs_f64(),
            ..LiveView::default()
        };
        for s in snaps {
            view.trials += s.trials;
            view.formed += s.formed;
            view.cycles += s.cycles;
            view.bits += s.bits;
            view.busy_secs += s.busy.as_secs_f64();
        }
        let budget = view.uptime_secs * self.cfg.workers as f64;
        view.utilization = if budget > 0.0 { (view.busy_secs / budget).min(1.0) } else { 0.0 };
        view
    }
}

/// The bound service; [`Server::run`] blocks until shutdown.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, opens the result cache, and builds the (not yet
    /// running) service.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration and cache-directory errors.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let cache = ResultCache::open(cfg.cache.clone())?;
        let quotas = ClientQuotas::new(cfg.quota_per_minute);
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                cfg,
                metrics: Metrics::default(),
                jobs: Mutex::new(JobTable {
                    next_id: 1,
                    all: BTreeMap::new(),
                    queue: VecDeque::new(),
                }),
                queue_cv: Condvar::new(),
                cache,
                quotas,
                shutdown: Arc::new(AtomicBool::new(false)),
                running: AtomicUsize::new(0),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared.shutdown))
    }

    /// Serves until SIGTERM/SIGINT or a [`ShutdownHandle`] fires, then
    /// drains: running trials finish (cooperative cancel at the next trial
    /// boundary), queued jobs cancel, workers join.
    ///
    /// # Errors
    ///
    /// Propagates listener errors other than `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for _ in 0..shared.cfg.workers.max(1) {
                scope.spawn(|| worker_loop(shared));
            }

            // `--soak SECS`: self-submit a timed soak job through the normal
            // queue (no HTTP round-trip to our own socket needed).
            if shared.cfg.soak_seconds > 0 {
                let spec = SoakSpec { seconds: shared.cfg.soak_seconds, ..SoakSpec::default() };
                {
                    let mut t = shared.lock_jobs();
                    let id = t.next_id;
                    t.next_id += 1;
                    let job = Arc::new(Job::new_soak(id, spec));
                    t.all.insert(id, Arc::clone(&job));
                    t.queue.push_back(job);
                }
                shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                shared.queue_cv.notify_one();
            }

            let result = loop {
                if shared.is_shutdown() {
                    break Ok(());
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => handle_connection(shared, stream, peer),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => break Err(e),
                }
            };

            // Drain: cancel everything, wake the workers, let them finish.
            shared.shutdown.store(true, Ordering::Release);
            {
                let t = shared.lock_jobs();
                for job in t.all.values() {
                    if !job.status().is_terminal() {
                        job.cancel.cancel();
                    }
                }
            }
            shared.queue_cv.notify_all();
            result
            // scope joins the workers here
        })
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut t = shared.lock_jobs();
            loop {
                if let Some(job) = t.queue.pop_front() {
                    break Some(job);
                }
                if shared.is_shutdown() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(t, Duration::from_millis(100))
                    // apf-lint: allow(panic-policy) — poisoning means a handler panicked; propagate
                    .expect("job table lock poisoned");
                t = guard;
            }
        };
        let Some(job) = job else { return };

        if !job.start() {
            shared.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        shared.metrics.job_queue_wait_seconds.observe(job.submitted.elapsed());

        if let Some(soak) = job.soak.clone() {
            run_soak_worker(shared, &job, &soak);
            continue;
        }

        shared.running.fetch_add(1, Ordering::Relaxed);
        // The spec was fully validated at submission, so execution cannot
        // fail validation; catch_unwind turns any residual bug into a
        // Failed job instead of a dead worker.
        let exec_t0 = Instant::now();
        let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if shared.coordinating() {
                run_coordinated(shared, &job)
            } else {
                Ok(run_local(shared, &job))
            }
        }));
        shared.metrics.job_exec_seconds.observe(exec_t0.elapsed());
        shared.running.fetch_sub(1, Ordering::Relaxed);

        match executed {
            Ok(Ok((status, outcome))) => {
                let counter = match status {
                    JobStatus::Cancelled => &shared.metrics.jobs_cancelled,
                    _ => &shared.metrics.jobs_done,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                finish_job(shared, &job, status, outcome);
            }
            Ok(Err(why)) => {
                eprintln!("job {} failed: {why}", job.id);
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                job.finish(JobStatus::Failed, None);
            }
            Err(_) => {
                shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
                job.finish(JobStatus::Failed, None);
            }
        }
    }
}

/// Executes one soak job: locally ([`crate::soak::run_soak`]) or sharded
/// across backends in coordinator mode. Mirrors the campaign path's
/// metrics, catch_unwind, and terminal-state handling; soak outcomes never
/// touch the result cache.
fn run_soak_worker(shared: &Shared, job: &Job, soak: &SoakSpec) {
    shared.running.fetch_add(1, Ordering::Relaxed);
    let exec_t0 = Instant::now();
    let executed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if shared.coordinating() {
            coordinator::run_soak_job(
                &shared.cfg.coordinator,
                soak,
                &job.request_id,
                &job.cancel,
                &shared.metrics,
            )
        } else {
            Ok(crate::soak::run_soak(
                soak,
                shared.cfg.engine_jobs.max(1),
                &job.cancel,
                &shared.metrics,
            ))
        }
    }));
    shared.metrics.job_exec_seconds.observe(exec_t0.elapsed());
    shared.running.fetch_sub(1, Ordering::Relaxed);

    match executed {
        Ok(Ok((cancelled, outcome))) => {
            let (status, counter) = if cancelled {
                (JobStatus::Cancelled, &shared.metrics.jobs_cancelled)
            } else {
                (JobStatus::Done, &shared.metrics.jobs_done)
            };
            counter.fetch_add(1, Ordering::Relaxed);
            job.finish_soak(status, Some(outcome));
        }
        Ok(Err(why)) => {
            eprintln!("soak job {} failed: {why}", job.id);
            shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            job.finish(JobStatus::Failed, None);
        }
        Err(_) => {
            shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            job.finish(JobStatus::Failed, None);
        }
    }
}

/// Runs a job on the local engine.
fn run_local(shared: &Shared, job: &Job) -> (JobStatus, JobOutcome) {
    let campaign = job.spec.to_campaign();
    let engine = Engine::new()
        .jobs(shared.cfg.engine_jobs.max(1))
        .trace_digests(true)
        .collect_results(job.spec.detail)
        .cancel_token(job.cancel.clone())
        .live_stats(Arc::clone(&job.live));
    let report = engine.run(&campaign);
    shared.metrics.fold_report(&report.stats, report.longest_trial.map(|(_, d)| d));
    let status = if report.cancelled && report.trials < report.requested {
        JobStatus::Cancelled
    } else {
        JobStatus::Done
    };
    (status, outcome_of(&report, job.spec.detail))
}

/// Runs a job by sharding it across the configured backends. The outcome's
/// `wall_secs` is the coordinator's own clock, recorded inside `run_job`.
fn run_coordinated(shared: &Shared, job: &Job) -> Result<(JobStatus, JobOutcome), String> {
    let report = coordinator::run_job(
        &shared.cfg.coordinator,
        &job.spec,
        &job.request_id,
        &job.cancel,
        &job.live,
        &shared.metrics,
    )?;
    let status = if report.cancelled { JobStatus::Cancelled } else { JobStatus::Done };
    Ok((status, report.outcome))
}

/// Records a finished job, feeding the cache and the verify pipeline.
fn finish_job(shared: &Shared, job: &Job, status: JobStatus, outcome: JobOutcome) {
    let complete = status == JobStatus::Done && outcome.trials == outcome.requested;
    match job.verify_against {
        Some(digest) => {
            // A cache-integrity replay: compare against the cached entry
            // instead of publishing anything new.
            if complete {
                match shared.cache.peek(digest) {
                    Some(cached) if same_result(&cached, &outcome) => {
                        shared.metrics.cache_verify_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(_) => {
                        shared.metrics.cache_verify_fail.fetch_add(1, Ordering::Relaxed);
                        shared.cache.evict(digest);
                        eprintln!(
                            "cache verify FAILED for spec digest {digest:016x}: evicted \
                             (cached bytes and a fresh engine run disagree)"
                        );
                    }
                    None => {} // evicted meanwhile; nothing to verify
                }
            }
        }
        None => {
            if complete && shared.cache_enabled() && job.spec.cacheable() {
                shared.cache.store(&job.spec.canonical, &outcome);
                shared.metrics.cache_stores.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    job.finish(status, Some(outcome));
}

/// Result equality for cache verification: every deterministic field, i.e.
/// everything except `wall_secs` (timing) and the response-only flags.
fn same_result(cached: &JobOutcome, fresh: &JobOutcome) -> bool {
    cached.trials == fresh.trials
        && cached.requested == fresh.requested
        && cached.formed == fresh.formed
        && cached.success.to_bits() == fresh.success.to_bits()
        && cached.mean_cycles.to_bits() == fresh.mean_cycles.to_bits()
        && cached.median_cycles.to_bits() == fresh.median_cycles.to_bits()
        && cached.p95_cycles.to_bits() == fresh.p95_cycles.to_bits()
        && cached.mean_bits.to_bits() == fresh.mean_bits.to_bits()
        && cached.bits_per_cycle.to_bits() == fresh.bits_per_cycle.to_bits()
        && cached.digests == fresh.digests
}

fn outcome_of(report: &CampaignReport, detail: bool) -> JobOutcome {
    let agg = report.aggregate();
    JobOutcome {
        trials: report.trials,
        requested: report.requested,
        formed: report.stats.formed(),
        success: agg.success,
        mean_cycles: agg.mean_cycles,
        median_cycles: agg.median_cycles,
        p95_cycles: agg.p95_cycles,
        mean_bits: agg.mean_bits,
        bits_per_cycle: agg.bits_per_cycle,
        digests: report.digests.clone().unwrap_or_default(),
        wall_secs: report.wall.as_secs_f64(),
        detail: if detail { report.results.clone() } else { None },
        cached: false,
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, peer: SocketAddr) {
    let t0 = Instant::now();
    let (response, method, path) = match read_request(&mut stream) {
        Ok(req) => {
            let response = route(shared, &req, peer);
            (response, req.method, req.path)
        }
        Err(err) => {
            let response = match err {
                RecvError::BadRequest(why) => Response::error(400, why),
                RecvError::HeadTooLarge => Response::error(400, "request head too large"),
                RecvError::BodyTooLarge => Response::error(413, "request body too large"),
                RecvError::Io(std::io::ErrorKind::WouldBlock) => {
                    Response::error(408, "read timeout")
                }
                RecvError::Io(_) => Response::error(400, "read error"),
            };
            (response, "-".to_string(), "-".to_string())
        }
    };
    shared.metrics.count_response(response.status);
    let took = t0.elapsed();
    shared.metrics.http_request_seconds.observe(took);
    if shared.cfg.log_requests {
        // The response header carries the request id whether it was echoed
        // from the client or generated by submit_job.
        let request_id = response
            .headers
            .iter()
            .find(|(n, _)| *n == coordinator::REQUEST_ID_HEADER)
            .map(|(_, v)| v.as_str());
        log_request(&method, &path, response.status, took, request_id);
    }
    // The client may already be gone; nothing useful to do with the error.
    let _ = response.send(&mut stream);
}

/// One JSONL request-log line on stderr, with the attacker-controlled parts
/// (method, path) escaped through `apf-trace`'s JSON string escaper so the
/// log stream stays one parseable event per line.
fn log_request(method: &str, path: &str, status: u16, took: Duration, request_id: Option<&str>) {
    let mut line = String::with_capacity(96);
    line.push_str("{\"ev\":\"http\",\"method\":\"");
    escape_json_str(method, &mut line);
    line.push_str("\",\"path\":\"");
    escape_json_str(path, &mut line);
    if let Some(id) = request_id {
        line.push_str("\",\"request_id\":\"");
        escape_json_str(id, &mut line);
    }
    let _ = std::fmt::Write::write_fmt(
        &mut line,
        format_args!("\",\"status\":{status},\"micros\":{}}}", took.as_micros()),
    );
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = writeln!(handle, "{line}");
}

fn route(shared: &Shared, req: &Request, peer: SocketAddr) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        // Infrastructure endpoints: available bare and under /v1.
        ("GET", ["healthz"] | ["v1", "healthz"]) => Response::json(
            200,
            &Json::obj([
                ("status", Json::str("ok")),
                ("shutting_down", Json::Bool(shared.is_shutdown())),
            ]),
        ),
        ("GET", ["metrics"] | ["v1", "metrics"]) => {
            let body = shared.metrics.render(&shared.live_view());
            Response {
                status: 200,
                headers: Vec::new(),
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: body.into_bytes(),
            }
        }

        // The versioned job API.
        ("POST", ["v1", "jobs"]) => submit_job(shared, req, peer),
        ("POST", ["v1", "soak"]) => submit_soak(shared, req, peer),
        ("GET", ["v1", "jobs"]) => {
            let t = shared.lock_jobs();
            let list: Vec<Json> = t
                .all
                .values()
                .map(|j| {
                    Json::obj([("id", Json::u64(j.id)), ("status", Json::str(j.status().label()))])
                })
                .collect();
            Response::json(200, &Json::obj([("jobs", Json::Arr(list))]))
        }
        ("GET", ["v1", "jobs", id]) => {
            with_job(shared, id, |job| Response::json(200, &job.status_json()))
        }
        ("GET", ["v1", "jobs", id, "result"]) => with_job(shared, id, |job| {
            let status = job.status();
            if let Some(outcome) = job.soak_outcome() {
                if status.is_terminal() {
                    return Response::json(
                        200,
                        &Json::obj([
                            ("id", Json::u64(job.id)),
                            ("status", Json::str(status.label())),
                            ("result", outcome.to_json()),
                        ]),
                    );
                }
            }
            match job.outcome() {
                Some(outcome) if status.is_terminal() => Response::json(
                    200,
                    &Json::obj([
                        ("id", Json::u64(job.id)),
                        ("status", Json::str(status.label())),
                        ("result", outcome.to_json()),
                    ]),
                ),
                _ if status.is_terminal() => Response::json(
                    200,
                    &Json::obj([("id", Json::u64(job.id)), ("status", Json::str(status.label()))]),
                ),
                _ => Response::error(409, "job not finished").header("Retry-After", "1"),
            }
        }),
        ("DELETE", ["v1", "jobs", id]) => with_job(shared, id, |job| {
            let status = job.request_cancel();
            Response::json(
                200,
                &Json::obj([("id", Json::u64(job.id)), ("status", Json::str(status.label()))]),
            )
        }),

        // Canonicalization as a service: the digest the cache would key on.
        ("GET" | "POST", ["v1", "spec-digest"]) => match JobSpec::from_json_bytes(&req.body) {
            Ok(spec) => Response::json(
                200,
                &Json::obj([
                    ("digest", Json::str(format!("{:016x}", spec.canonical.digest()))),
                    (
                        "canonical",
                        crate::json::parse(&spec.canonical.canonical_json()).unwrap_or(Json::Null),
                    ),
                    ("cacheable", Json::Bool(spec.cacheable())),
                ]),
            ),
            Err(why) => Response::error(400, &why),
        },

        // Legacy unversioned job paths: 308 preserves method + body, so
        // clients that follow redirects keep working unchanged.
        (_, ["jobs"] | ["jobs", _] | ["jobs", _, "result"]) => {
            let location = format!("/v1{}", req.path);
            Response::json(
                308,
                &Json::obj([
                    ("error", Json::str("the job API moved under /v1/")),
                    ("location", Json::str(location.clone())),
                ]),
            )
            .header("Location", location)
        }

        (
            _,
            ["healthz" | "metrics"]
            | ["v1", "healthz" | "metrics" | "jobs" | "spec-digest" | "soak"]
            | ["v1", "jobs", _]
            | ["v1", "jobs", _, "result"],
        ) => Response::error(405, "method not allowed").header("Allow", "GET, POST, DELETE"),
        _ => Response::error(404, "no such route"),
    }
}

fn with_job(shared: &Shared, id: &str, f: impl FnOnce(&Job) -> Response) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(404, "job ids are integers");
    };
    let job = {
        let t = shared.lock_jobs();
        t.all.get(&id).cloned()
    };
    match job {
        Some(job) => f(&job),
        None => Response::error(404, "no such job"),
    }
}

/// The request id for a submission: a well-formed `X-Apf-Request-Id` (an
/// upstream coordinator propagating its id, or a client threading its own
/// correlation id) is reused; anything absent or malformed gets a fresh
/// process-unique id. The id is echoed on every submit response and
/// forwarded to backends on every shard call, so one submission's requests
/// correlate across the whole fleet.
fn request_id_of(req: &Request) -> String {
    let well_formed = |id: &str| {
        !id.is_empty()
            && id.len() <= 64
            && id.bytes().all(|b| b.is_ascii_alphanumeric() || b"-_.".contains(&b))
    };
    match req.header("x-apf-request-id") {
        Some(id) if well_formed(id) => id.to_string(),
        _ => next_request_id(),
    }
}

/// A fresh request id: FNV-1a over the wall clock and a process counter,
/// rendered as 16 hex digits. The counter alone guarantees uniqueness
/// within the process; the clock makes ids distinct across restarts.
fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap_or_default();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [now.as_secs(), u64::from(now.subsec_nanos()), count] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn submit_job(shared: &Shared, req: &Request, peer: SocketAddr) -> Response {
    if shared.is_shutdown() {
        return Response::error(503, "shutting down");
    }
    let spec = match JobSpec::from_json_bytes(&req.body) {
        Ok(spec) => spec,
        Err(why) => return Response::error(400, &why),
    };
    let request_id = request_id_of(req);

    // Per-client quota: explicit client id first, peer address as fallback.
    let client = req.header("x-client-id").map_or_else(|| peer.ip().to_string(), str::to_string);
    if !shared.quotas.admit(&client) {
        shared.metrics.quota_rejected.fetch_add(1, Ordering::Relaxed);
        return Response::error(429, "client quota exceeded")
            .header("Retry-After", "60")
            .header(coordinator::REQUEST_ID_HEADER, request_id);
    }

    // Content-addressed cache: answer a repeated cacheable spec without
    // running it; every Nth hit also enqueues an integrity replay.
    let cacheable = shared.cache_enabled() && spec.cacheable();
    if cacheable {
        let digest = spec.canonical.digest();
        if let Some(hit) = shared.cache.lookup(digest) {
            shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let job = {
                let mut t = shared.lock_jobs();
                if t.all.len() >= shared.cfg.max_jobs {
                    shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                    return Response::error(429, "job table full")
                        .header("Retry-After", "1")
                        .header(coordinator::REQUEST_ID_HEADER, request_id);
                }
                let id = t.next_id;
                t.next_id += 1;
                let job = Arc::new(
                    Job::new_done(id, spec.clone(), hit.outcome)
                        .with_request_id(request_id.clone()),
                );
                t.all.insert(id, Arc::clone(&job));
                if hit.verify {
                    // Opportunistic: replay only if the queue has room.
                    if t.queue.len() < shared.cfg.queue_depth && t.all.len() < shared.cfg.max_jobs {
                        let vid = t.next_id;
                        t.next_id += 1;
                        let verify = Arc::new(
                            Job::new_verify(vid, spec.clone(), digest)
                                .with_request_id(request_id.clone()),
                        );
                        t.all.insert(vid, Arc::clone(&verify));
                        t.queue.push_back(verify);
                        shared.queue_cv.notify_one();
                    }
                }
                job
            };
            shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            return Response::json(
                202,
                &Json::obj([
                    ("id", Json::u64(job.id)),
                    ("status", Json::str("done")),
                    ("cached", Json::Bool(true)),
                ]),
            )
            .header(coordinator::REQUEST_ID_HEADER, request_id);
        }
        shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    let job = {
        let mut t = shared.lock_jobs();
        if t.queue.len() >= shared.cfg.queue_depth || t.all.len() >= shared.cfg.max_jobs {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "queue full")
                .header("Retry-After", "1")
                .header(coordinator::REQUEST_ID_HEADER, request_id);
        }
        let id = t.next_id;
        t.next_id += 1;
        let job = Arc::new(Job::new(id, spec).with_request_id(request_id.clone()));
        t.all.insert(id, Arc::clone(&job));
        t.queue.push_back(Arc::clone(&job));
        job
    };
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Response::json(202, &Json::obj([("id", Json::u64(job.id)), ("status", Json::str("queued"))]))
        .header(coordinator::REQUEST_ID_HEADER, request_id)
}

/// `POST /v1/soak`: submit a geometry-fuzz soak job. Same admission
/// control as campaign jobs (shutdown check, per-client quota, bounded
/// queue) but never answered from the result cache — a soak is a sweep,
/// not a content-addressed campaign.
fn submit_soak(shared: &Shared, req: &Request, peer: SocketAddr) -> Response {
    if shared.is_shutdown() {
        return Response::error(503, "shutting down");
    }
    let spec = match SoakSpec::from_json_bytes(&req.body) {
        Ok(spec) => spec,
        Err(why) => return Response::error(400, &why),
    };
    let request_id = request_id_of(req);

    let client = req.header("x-client-id").map_or_else(|| peer.ip().to_string(), str::to_string);
    if !shared.quotas.admit(&client) {
        shared.metrics.quota_rejected.fetch_add(1, Ordering::Relaxed);
        return Response::error(429, "client quota exceeded")
            .header("Retry-After", "60")
            .header(coordinator::REQUEST_ID_HEADER, request_id);
    }

    let job = {
        let mut t = shared.lock_jobs();
        if t.queue.len() >= shared.cfg.queue_depth || t.all.len() >= shared.cfg.max_jobs {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::error(429, "queue full")
                .header("Retry-After", "1")
                .header(coordinator::REQUEST_ID_HEADER, request_id);
        }
        let id = t.next_id;
        t.next_id += 1;
        let job = Arc::new(Job::new_soak(id, spec).with_request_id(request_id.clone()));
        t.all.insert(id, Arc::clone(&job));
        t.queue.push_back(Arc::clone(&job));
        job
    };
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Response::json(
        202,
        &Json::obj([
            ("id", Json::u64(job.id)),
            ("status", Json::str("queued")),
            ("kind", Json::str("soak")),
        ]),
    )
    .header(coordinator::REQUEST_ID_HEADER, request_id)
}
