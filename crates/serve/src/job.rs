//! Job specifications and lifecycle state.
//!
//! A job is a campaign described over the wire. [`JobSpec`] maps the JSON
//! body of `POST /jobs` onto the exact `Campaign` construction the CLI
//! harness uses — same campaign seed, same per-trial generator offsets
//! (`symmetric_configuration(n, rho, 1000 + i)` /
//! `random_pattern(n, 2000 + i)`, as in experiment E1) — so a job submitted
//! over HTTP reproduces a CLI run of the same spec **bit for bit**, digests
//! included. That parity is asserted by the integration tests and the
//! `check.sh` smoke step.

use crate::json::{self, Json};
use apf_bench::engine::{Campaign, CancelToken, LiveStats, RunSpec};
use apf_scheduler::SchedulerKind;
use std::sync::{Arc, Mutex};

/// Upper bound on trials per job (bounds queue memory and worker latency).
pub const MAX_TRIALS: u64 = 4096;
/// Upper bound on robots per trial.
pub const MAX_ROBOTS: usize = 64;
/// Upper bound on the per-trial step budget.
pub const MAX_BUDGET: u64 = 20_000_000;

/// Which instance generator seeds the initial configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generator {
    /// `apf_patterns::symmetric_configuration(n, rho, 1000 + i)` — the
    /// worst-case election path (experiment E1's generator).
    Symmetric,
    /// `apf_patterns::asymmetric_configuration(n, 1000 + i)`.
    Asymmetric,
}

/// A validated campaign description, as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Campaign name (reports, metrics labels).
    pub name: String,
    /// Campaign seed (per-trial seeds derive from it).
    pub seed: u64,
    /// Number of trials.
    pub trials: u64,
    /// Robots per trial.
    pub n: usize,
    /// Symmetricity parameter for the symmetric generator.
    pub rho: usize,
    /// Initial-configuration generator.
    pub generator: Generator,
    /// Scheduler kind.
    pub scheduler: SchedulerKind,
    /// Per-trial engine-step budget.
    pub budget: u64,
}

impl Default for JobSpec {
    /// The defaults mirror one row of experiment E1 in `--quick` mode:
    /// `n = 8`, `rho = 4`, 8 trials, campaign seed 1, RoundRobin, a 2 M-step
    /// budget.
    fn default() -> Self {
        JobSpec {
            name: "job".to_string(),
            seed: 1,
            trials: 8,
            n: 8,
            rho: 4,
            generator: Generator::Symmetric,
            scheduler: SchedulerKind::RoundRobin,
            budget: 2_000_000,
        }
    }
}

impl JobSpec {
    /// Parses and validates a spec from a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the 400 body) on malformed JSON,
    /// unknown fields, or out-of-range values.
    pub fn from_json_bytes(body: &[u8]) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let Json::Obj(map) = &v else {
            return Err("body must be a JSON object".to_string());
        };

        let mut spec = JobSpec::default();
        for (key, value) in map {
            match key.as_str() {
                "name" => {
                    let s = value.as_str().ok_or("\"name\" must be a string")?;
                    if s.is_empty() || s.len() > 128 {
                        return Err("\"name\" must be 1..=128 chars".to_string());
                    }
                    spec.name = s.to_string();
                }
                "seed" => spec.seed = req_u64(value, "seed")?,
                "trials" => spec.trials = req_u64(value, "trials")?,
                "n" => spec.n = req_u64(value, "n")? as usize,
                "rho" => spec.rho = req_u64(value, "rho")? as usize,
                "generator" => {
                    spec.generator = match value.as_str() {
                        Some("symmetric") => Generator::Symmetric,
                        Some("asymmetric") => Generator::Asymmetric,
                        _ => {
                            return Err(
                                "\"generator\" must be \"symmetric\" or \"asymmetric\"".to_string()
                            )
                        }
                    }
                }
                "scheduler" => {
                    spec.scheduler =
                        match value.as_str() {
                            Some("fsync") => SchedulerKind::Fsync,
                            Some("ssync") => SchedulerKind::Ssync,
                            Some("async") => SchedulerKind::Async,
                            Some("round_robin") => SchedulerKind::RoundRobin,
                            _ => return Err(
                                "\"scheduler\" must be one of \"fsync\", \"ssync\", \"async\", \
                             \"round_robin\""
                                    .to_string(),
                            ),
                        }
                }
                "budget" => spec.budget = req_u64(value, "budget")?,
                other => return Err(format!("unknown field {other:?}")),
            }
        }

        spec.validate()?;
        Ok(spec)
    }

    /// Range-checks the spec and verifies every trial's instance builds —
    /// after this, running the campaign cannot fail validation.
    ///
    /// # Errors
    ///
    /// Returns the 400 body text.
    pub fn validate(&self) -> Result<(), String> {
        if self.trials == 0 || self.trials > MAX_TRIALS {
            return Err(format!("\"trials\" must be 1..={MAX_TRIALS}"));
        }
        if self.n < 7 || self.n > MAX_ROBOTS {
            return Err(format!("\"n\" must be 7..={MAX_ROBOTS} (the paper needs n >= 7)"));
        }
        if self.generator == Generator::Symmetric
            && (self.rho < 2 || !self.n.is_multiple_of(self.rho))
        {
            return Err(
                "\"rho\" must be >= 2 and divide \"n\" for the symmetric generator".to_string()
            );
        }
        if self.budget == 0 || self.budget > MAX_BUDGET {
            return Err(format!("\"budget\" must be 1..={MAX_BUDGET}"));
        }
        let campaign = self.to_campaign();
        for (i, spec) in campaign.specs().iter().enumerate() {
            spec.build_world().map_err(|e| format!("trial {i} is invalid: {e}"))?;
        }
        Ok(())
    }

    /// The spec's campaign — identical construction to a CLI run.
    pub fn to_campaign(&self) -> Campaign {
        let mut c = Campaign::new(self.name.clone(), self.seed);
        let (n, rho, generator, scheduler, budget) =
            (self.n, self.rho, self.generator, self.scheduler, self.budget);
        c.add_trials(self.trials, |i, _seed| {
            let initial = match generator {
                Generator::Symmetric => apf_patterns::symmetric_configuration(n, rho, 1000 + i),
                Generator::Asymmetric => apf_patterns::asymmetric_configuration(n, 1000 + i),
            };
            RunSpec::new(initial, apf_patterns::random_pattern(n, 2000 + i))
                .scheduler(scheduler)
                .budget(budget)
        });
        c
    }

    /// The spec as response JSON (echoed in job status).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("seed", Json::u64(self.seed)),
            ("trials", Json::u64(self.trials)),
            ("n", Json::usize(self.n)),
            ("rho", Json::usize(self.rho)),
            (
                "generator",
                Json::str(match self.generator {
                    Generator::Symmetric => "symmetric",
                    Generator::Asymmetric => "asymmetric",
                }),
            ),
            (
                "scheduler",
                Json::str(match self.scheduler {
                    SchedulerKind::Fsync => "fsync",
                    SchedulerKind::Ssync => "ssync",
                    SchedulerKind::Async => "async",
                    SchedulerKind::RoundRobin => "round_robin",
                }),
            ),
            ("budget", Json::u64(self.budget)),
        ])
    }
}

fn req_u64(value: &Json, key: &str) -> Result<u64, String> {
    value.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In the queue, not yet started.
    Queued,
    /// A worker is executing it.
    Running,
    /// Completed every trial.
    Done,
    /// Stopped by `DELETE /jobs/{id}` or shutdown; partial results kept.
    Cancelled,
    /// The worker panicked (a bug, surfaced rather than hidden).
    Failed,
}

impl JobStatus {
    /// Lowercase wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed)
    }
}

/// The final outcome a worker records.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Trials executed (a prefix of the campaign when cancelled).
    pub trials: usize,
    /// Trials the spec requested.
    pub requested: usize,
    /// Successful trials.
    pub formed: u64,
    /// Success fraction over executed trials.
    pub success: f64,
    /// Mean cycles over successful trials.
    pub mean_cycles: f64,
    /// Median cycles over successful trials.
    pub median_cycles: f64,
    /// 95th-percentile cycles over successful trials.
    pub p95_cycles: f64,
    /// Mean random bits over successful trials.
    pub mean_bits: f64,
    /// Random bits per cycle over successful trials.
    pub bits_per_cycle: f64,
    /// Per-trial FNV-1a trace digests, in trial order.
    pub digests: Vec<u64>,
    /// Campaign wall-clock seconds.
    pub wall_secs: f64,
}

impl JobOutcome {
    /// The outcome as response JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trials", Json::usize(self.trials)),
            ("requested", Json::usize(self.requested)),
            ("formed", Json::u64(self.formed)),
            ("success", Json::f64(self.success)),
            ("mean_cycles", Json::f64(self.mean_cycles)),
            ("median_cycles", Json::f64(self.median_cycles)),
            ("p95_cycles", Json::f64(self.p95_cycles)),
            ("mean_bits", Json::f64(self.mean_bits)),
            ("bits_per_cycle", Json::f64(self.bits_per_cycle)),
            ("digests", json::u64_array(&self.digests)),
            ("wall_secs", Json::f64(self.wall_secs)),
        ])
    }
}

/// One submitted job: spec, lifecycle state, live counters, cancel token.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// The validated spec.
    pub spec: JobSpec,
    /// Cooperative cancellation for `DELETE` and shutdown.
    pub cancel: CancelToken,
    /// Live per-trial counters the engine updates while running.
    pub live: Arc<LiveStats>,
    state: Mutex<JobState>,
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    outcome: Option<JobOutcome>,
}

impl Job {
    /// A freshly queued job.
    pub fn new(id: u64, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            cancel: CancelToken::new(),
            live: Arc::new(LiveStats::default()),
            state: Mutex::new(JobState { status: JobStatus::Queued, outcome: None }),
        }
    }

    /// Current status.
    pub fn status(&self) -> JobStatus {
        self.lock().status
    }

    /// Transitions `Queued -> Running`; false if the job was already
    /// cancelled (the worker then skips it).
    pub fn start(&self) -> bool {
        let mut s = self.lock();
        if s.status == JobStatus::Queued && !self.cancel.is_cancelled() {
            s.status = JobStatus::Running;
            true
        } else {
            if s.status == JobStatus::Queued {
                s.status = JobStatus::Cancelled;
            }
            false
        }
    }

    /// Records the terminal state and outcome.
    pub fn finish(&self, status: JobStatus, outcome: Option<JobOutcome>) {
        let mut s = self.lock();
        s.status = status;
        s.outcome = outcome;
    }

    /// Requests cancellation; returns the status after the request.
    pub fn request_cancel(&self) -> JobStatus {
        self.cancel.cancel();
        let mut s = self.lock();
        if s.status == JobStatus::Queued {
            s.status = JobStatus::Cancelled;
        }
        s.status
    }

    /// A clone of the outcome, if terminal.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.lock().outcome.clone()
    }

    /// Status JSON for `GET /jobs/{id}`.
    pub fn status_json(&self) -> Json {
        let (status, outcome) = {
            let s = self.lock();
            (s.status, s.outcome.clone())
        };
        let snap = self.live.snapshot();
        let mut obj = match Json::obj([
            ("id", Json::u64(self.id)),
            ("status", Json::str(status.label())),
            ("spec", self.spec.to_json()),
            (
                "live",
                Json::obj([
                    ("trials", Json::u64(snap.trials)),
                    ("formed", Json::u64(snap.formed)),
                    ("cycles", Json::u64(snap.cycles)),
                    ("bits", Json::u64(snap.bits)),
                    ("busy_secs", Json::f64(snap.busy.as_secs_f64())),
                ]),
            ),
        ]) {
            Json::Obj(m) => m,
            // apf-lint: allow(panic-policy) — Json::obj always returns Json::Obj
            _ => unreachable!("Json::obj returns an object"),
        };
        if let Some(out) = outcome {
            obj.insert("result".to_string(), out.to_json());
        }
        Json::Obj(obj)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        // apf-lint: allow(panic-policy) — lock poisoning means a worker already panicked; propagate
        self.state.lock().expect("job state lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips_through_json() {
        let spec = JobSpec::default();
        let body = spec.to_json().render();
        let back = JobSpec::from_json_bytes(body.as_bytes()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, why) in [
            (r#"[]"#, "not an object"),
            (r#"{"trials":0}"#, "zero trials"),
            (r#"{"trials":1000000}"#, "too many trials"),
            (r#"{"n":4}"#, "too few robots"),
            (r#"{"n":8,"rho":3}"#, "rho does not divide n"),
            (r#"{"budget":0}"#, "zero budget"),
            (r#"{"seed":-1}"#, "negative seed"),
            (r#"{"seed":1.5}"#, "fractional seed"),
            (r#"{"bogus":1}"#, "unknown field"),
            (r#"{"scheduler":"serial"}"#, "unknown scheduler"),
            (r#"not json"#, "malformed"),
        ] {
            assert!(JobSpec::from_json_bytes(body.as_bytes()).is_err(), "accepted {why}: {body}");
        }
    }

    #[test]
    fn spec_matches_e1_quick_campaign() {
        // The default spec's campaign must be *constructed* exactly like one
        // row of E1 --quick (n=8, rho=4, 16->8 trials, seed 1): same derived
        // per-trial seeds, same generator offsets.
        let c = JobSpec::default().to_campaign();
        assert_eq!(c.len(), 8);
        let mut reference = Campaign::new("e1 n=8 rho=4", 1);
        reference.add_trials(8, |i, _seed| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(8, 4, 1000 + i),
                apf_patterns::random_pattern(8, 2000 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(2_000_000)
        });
        for (a, b) in c.specs().iter().zip(reference.specs()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn job_lifecycle_transitions() {
        let job = Job::new(1, JobSpec::default());
        assert_eq!(job.status(), JobStatus::Queued);
        assert!(job.start());
        assert_eq!(job.status(), JobStatus::Running);
        job.finish(JobStatus::Done, None);
        assert!(job.status().is_terminal());

        let cancelled = Job::new(2, JobSpec::default());
        assert_eq!(cancelled.request_cancel(), JobStatus::Cancelled);
        assert!(!cancelled.start(), "cancelled-in-queue job must not start");
        assert_eq!(cancelled.status(), JobStatus::Cancelled);
    }
}
