//! Job specifications and lifecycle state.
//!
//! A job is a campaign described over the wire. [`JobSpec`] is a thin
//! transport wrapper around [`apf_bench::spec::CanonicalSpec`] — the single
//! shared campaign-spec type — plus two serve-only extensions: an optional
//! trial sub-range (shard execution for the coordinator) and a `detail`
//! flag (include per-trial records in the result, the coordinator's merge
//! input). The canonical core is the single code path from a spec to a
//! `Campaign`, to `apf-cli job-digest`, and to the content-address the
//! result cache keys on, so a job submitted over HTTP reproduces a CLI run
//! of the same spec **bit for bit**, digests included. That parity is
//! asserted by the integration tests and the `check.sh` smoke step.

use crate::json::{self, Json};
use crate::soak::{SoakOutcome, SoakSpec};
use apf_bench::engine::{Campaign, CancelToken, LiveStats};
use apf_bench::spec::{scheduler_from_label, scheduler_label, CanonicalSpec, Generator};
use apf_bench::RunResult;
use apf_trace::PhaseKind;
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use apf_bench::spec::{MAX_BUDGET, MAX_ROBOTS, MAX_TRIALS};

/// A validated campaign description, as submitted over the wire: the shared
/// canonical spec plus serve-only transport extensions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobSpec {
    /// The canonical campaign description (shared with `apf-bench` and the
    /// CLI; the content-addressed identity of the job).
    pub canonical: CanonicalSpec,
    /// Execute only trials `lo..hi` of the campaign (a coordinator shard).
    /// Absolute indices: trial `i` here is bit-identical to trial `i` of
    /// the full campaign. `None` = all trials.
    pub range: Option<(u64, u64)>,
    /// Include per-trial records in the result (`result.detail`), the input
    /// a coordinator needs to merge shards bit-identically.
    pub detail: bool,
}

impl std::ops::Deref for JobSpec {
    type Target = CanonicalSpec;

    fn deref(&self) -> &CanonicalSpec {
        &self.canonical
    }
}

impl JobSpec {
    /// Parses and validates a spec from a request body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the 400 body) on malformed JSON,
    /// unknown fields, or out-of-range values.
    pub fn from_json_bytes(body: &[u8]) -> Result<JobSpec, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let Json::Obj(map) = &v else {
            return Err("body must be a JSON object".to_string());
        };

        let mut spec = JobSpec::default();
        for (key, value) in map {
            match key.as_str() {
                "name" => {
                    let s = value.as_str().ok_or("\"name\" must be a string")?;
                    spec.canonical.name = s.to_string();
                }
                "seed" => spec.canonical.seed = req_u64(value, "seed")?,
                "trials" => spec.canonical.trials = req_u64(value, "trials")?,
                "n" => spec.canonical.n = req_u64(value, "n")? as usize,
                "rho" => spec.canonical.rho = req_u64(value, "rho")? as usize,
                "generator" => {
                    spec.canonical.generator = value
                        .as_str()
                        .and_then(Generator::from_label)
                        .ok_or("\"generator\" must be \"symmetric\" or \"asymmetric\"")?;
                }
                "scheduler" => {
                    spec.canonical.scheduler =
                        value.as_str().and_then(scheduler_from_label).ok_or(
                            "\"scheduler\" must be one of \"fsync\", \"ssync\", \"async\", \
                             \"round_robin\"",
                        )?;
                }
                "budget" => spec.canonical.budget = req_u64(value, "budget")?,
                "range" => {
                    let arr = value.as_arr().ok_or("\"range\" must be [lo, hi]")?;
                    let [lo, hi] = arr else {
                        return Err("\"range\" must be [lo, hi]".to_string());
                    };
                    spec.range = Some((req_u64(lo, "range[0]")?, req_u64(hi, "range[1]")?));
                }
                "detail" => {
                    spec.detail = match value {
                        Json::Bool(b) => *b,
                        _ => return Err("\"detail\" must be a boolean".to_string()),
                    };
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }

        spec.validate()?;
        Ok(spec)
    }

    /// Range-checks the spec (canonical core plus the shard range) and
    /// verifies every trial's instance builds — after this, running the
    /// campaign cannot fail validation.
    ///
    /// # Errors
    ///
    /// Returns the 400 body text.
    pub fn validate(&self) -> Result<(), String> {
        self.canonical.validate()?;
        if let Some((lo, hi)) = self.range {
            if lo > hi || hi > self.canonical.trials {
                return Err(format!(
                    "\"range\" [{lo}, {hi}] must satisfy lo <= hi <= trials ({})",
                    self.canonical.trials
                ));
            }
        }
        Ok(())
    }

    /// The campaign this job executes: the full canonical campaign, or the
    /// shard slice when a range is set. Either way the construction is the
    /// single shared `CanonicalSpec` path — identical to a CLI run.
    pub fn to_campaign(&self) -> Campaign {
        match self.range {
            Some((lo, hi)) => self.canonical.to_campaign_range(lo, hi),
            None => self.canonical.to_campaign(),
        }
    }

    /// Whether the result may be served from / stored into the
    /// content-addressed cache: only whole-campaign, no-detail runs — the
    /// cache is keyed on the canonical spec alone, and shard/detail results
    /// describe something narrower than the key.
    pub fn cacheable(&self) -> bool {
        self.range.is_none() && !self.detail
    }

    /// The spec as response JSON (echoed in job status). Canonical fields
    /// always; transport extensions only when set.
    pub fn to_json(&self) -> Json {
        let c = &self.canonical;
        let mut obj = match Json::obj([
            ("name", Json::str(c.name.clone())),
            ("seed", Json::u64(c.seed)),
            ("trials", Json::u64(c.trials)),
            ("n", Json::usize(c.n)),
            ("rho", Json::usize(c.rho)),
            ("generator", Json::str(c.generator.label())),
            ("scheduler", Json::str(scheduler_label(c.scheduler))),
            ("budget", Json::u64(c.budget)),
        ]) {
            Json::Obj(m) => m,
            // apf-lint: allow(panic-reachability) — Json::obj always returns Json::Obj; the arm is statically dead
            _ => unreachable!("Json::obj returns an object"),
        };
        if let Some((lo, hi)) = self.range {
            obj.insert("range".to_string(), Json::Arr(vec![Json::u64(lo), Json::u64(hi)]));
        }
        if self.detail {
            obj.insert("detail".to_string(), Json::Bool(true));
        }
        Json::Obj(obj)
    }
}

fn req_u64(value: &Json, key: &str) -> Result<u64, String> {
    value.as_u64().ok_or_else(|| format!("{key:?} must be a non-negative integer"))
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// In the queue, not yet started.
    Queued,
    /// A worker is executing it.
    Running,
    /// Completed every trial.
    Done,
    /// Stopped by `DELETE /v1/jobs/{id}` or shutdown; partial results kept.
    Cancelled,
    /// The worker panicked (a bug, surfaced rather than hidden).
    Failed,
}

impl JobStatus {
    /// Lowercase wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed)
    }
}

/// The final outcome a worker records.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Trials executed (a prefix of the campaign when cancelled).
    pub trials: usize,
    /// Trials the spec requested.
    pub requested: usize,
    /// Successful trials.
    pub formed: u64,
    /// Success fraction over executed trials.
    pub success: f64,
    /// Mean cycles over successful trials.
    pub mean_cycles: f64,
    /// Median cycles over successful trials.
    pub median_cycles: f64,
    /// 95th-percentile cycles over successful trials.
    pub p95_cycles: f64,
    /// Mean random bits over successful trials.
    pub mean_bits: f64,
    /// Random bits per cycle over successful trials.
    pub bits_per_cycle: f64,
    /// Per-trial FNV-1a trace digests, in trial order.
    pub digests: Vec<u64>,
    /// Campaign wall-clock seconds (timing-noisy; excluded from equality
    /// comparisons done by the cache verifier and check.sh).
    pub wall_secs: f64,
    /// Per-trial results in trial order (only when the spec set `detail`).
    pub detail: Option<Vec<RunResult>>,
    /// Whether this outcome was answered from the content-addressed cache
    /// rather than executed.
    pub cached: bool,
}

impl JobOutcome {
    /// The outcome as response JSON.
    pub fn to_json(&self) -> Json {
        let mut obj = match Json::obj([
            ("trials", Json::usize(self.trials)),
            ("requested", Json::usize(self.requested)),
            ("formed", Json::u64(self.formed)),
            ("success", Json::f64(self.success)),
            ("mean_cycles", Json::f64(self.mean_cycles)),
            ("median_cycles", Json::f64(self.median_cycles)),
            ("p95_cycles", Json::f64(self.p95_cycles)),
            ("mean_bits", Json::f64(self.mean_bits)),
            ("bits_per_cycle", Json::f64(self.bits_per_cycle)),
            ("digests", json::u64_array(&self.digests)),
            ("wall_secs", Json::f64(self.wall_secs)),
        ]) {
            Json::Obj(m) => m,
            // apf-lint: allow(panic-reachability) — Json::obj always returns Json::Obj; the arm is statically dead
            _ => unreachable!("Json::obj returns an object"),
        };
        if let Some(detail) = &self.detail {
            obj.insert("detail".to_string(), Json::Arr(detail.iter().map(trial_to_json).collect()));
        }
        if self.cached {
            obj.insert("cached".to_string(), Json::Bool(true));
        }
        Json::Obj(obj)
    }

    /// Parses an outcome back from its [`JobOutcome::to_json`] form (the
    /// cache's disk format; also how the coordinator reads backend results).
    /// Numeric fields round-trip exactly: `u64` tokens are parsed as `u64`,
    /// and `f64` values use Rust's shortest-round-trip formatting.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<JobOutcome, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("result missing {k:?}"));
        let u = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("{k:?} must be a u64"));
        let f = |k: &str| field(k)?.as_f64().ok_or_else(|| format!("{k:?} must be a number"));
        let digests = field("digests")?
            .as_arr()
            .ok_or("\"digests\" must be an array")?
            .iter()
            .map(|d| d.as_u64().ok_or_else(|| "digest must be a u64".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        let detail = match v.get("detail") {
            None => None,
            Some(Json::Arr(items)) => {
                Some(items.iter().map(trial_from_json).collect::<Result<Vec<_>, _>>()?)
            }
            Some(_) => return Err("\"detail\" must be an array".to_string()),
        };
        Ok(JobOutcome {
            trials: u("trials")? as usize,
            requested: u("requested")? as usize,
            formed: u("formed")?,
            success: f("success")?,
            mean_cycles: f("mean_cycles")?,
            median_cycles: f("median_cycles")?,
            p95_cycles: f("p95_cycles")?,
            mean_bits: f("mean_bits")?,
            bits_per_cycle: f("bits_per_cycle")?,
            digests,
            wall_secs: f("wall_secs")?,
            detail,
            cached: matches!(v.get("cached"), Some(Json::Bool(true))),
        })
    }
}

/// One per-trial record on the wire. `distance` is the only float; Rust's
/// shortest formatting plus the token-preserving parser round-trips it bit
/// for bit, which the coordinator's bitwise merge depends on.
fn trial_to_json(r: &RunResult) -> Json {
    Json::obj([
        ("formed", Json::Bool(r.formed)),
        ("steps", Json::u64(r.steps)),
        ("cycles", Json::u64(r.cycles)),
        ("bits", Json::u64(r.bits)),
        ("distance", Json::f64(r.distance)),
        ("phase_cycles", json::u64_array(&r.phase_cycles)),
        ("phase_bits", json::u64_array(&r.phase_bits)),
    ])
}

/// Parses one per-trial record (inverse of [`trial_to_json`]).
fn trial_from_json(v: &Json) -> Result<RunResult, String> {
    let field = |k: &str| v.get(k).ok_or_else(|| format!("trial record missing {k:?}"));
    let u = |k: &str| field(k)?.as_u64().ok_or_else(|| format!("{k:?} must be a u64"));
    let phases = |k: &str| -> Result<[u64; PhaseKind::COUNT], String> {
        let arr = field(k)?.as_arr().ok_or_else(|| format!("{k:?} must be an array"))?;
        if arr.len() != PhaseKind::COUNT {
            return Err(format!("{k:?} must have {} entries", PhaseKind::COUNT));
        }
        let mut out = [0u64; PhaseKind::COUNT];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = item.as_u64().ok_or_else(|| format!("{k:?} entries must be u64"))?;
        }
        Ok(out)
    };
    Ok(RunResult {
        formed: match field("formed")? {
            Json::Bool(b) => *b,
            _ => return Err("\"formed\" must be a boolean".to_string()),
        },
        steps: u("steps")?,
        cycles: u("cycles")?,
        bits: u("bits")?,
        distance: field("distance")?.as_f64().ok_or("\"distance\" must be a number")?,
        phase_cycles: phases("phase_cycles")?,
        phase_bits: phases("phase_bits")?,
    })
}

/// One submitted job: spec, lifecycle state, live counters, cancel token.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// The validated spec.
    pub spec: JobSpec,
    /// Cooperative cancellation for `DELETE` and shutdown.
    pub cancel: CancelToken,
    /// Live per-trial counters the engine updates while running.
    pub live: Arc<LiveStats>,
    /// When set, this job is a cache-integrity replay: after it finishes,
    /// the worker compares its digests against the cached outcome for this
    /// canonical-spec digest instead of double-counting a user job.
    pub verify_against: Option<u64>,
    /// When set, this is a soak job: the worker runs a geometry-fuzz sweep
    /// ([`crate::soak::run_soak`]) instead of a campaign, `spec` is unused,
    /// and the outcome lands in the soak slot. Soak results never enter
    /// the result cache.
    pub soak: Option<SoakSpec>,
    /// The request id this job was submitted under (client-supplied
    /// `X-Apf-Request-Id` or coordinator-generated). Empty for jobs created
    /// outside the HTTP path (tests, embedders).
    pub request_id: String,
    /// When the job entered the queue; queue-wait latency is measured from
    /// here to the worker claiming it.
    pub submitted: Instant,
    state: Mutex<JobState>,
}

#[derive(Debug)]
struct JobState {
    status: JobStatus,
    outcome: Option<JobOutcome>,
    soak_outcome: Option<SoakOutcome>,
}

impl Job {
    /// A freshly queued job.
    pub fn new(id: u64, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            cancel: CancelToken::new(),
            live: Arc::new(LiveStats::default()),
            verify_against: None,
            soak: None,
            request_id: String::new(),
            submitted: Instant::now(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                outcome: None,
                soak_outcome: None,
            }),
        }
    }

    /// A freshly queued soak job.
    pub fn new_soak(id: u64, soak: SoakSpec) -> Job {
        let mut job = Job::new(id, JobSpec::default());
        job.soak = Some(soak);
        job
    }

    /// Tags the job with the request id it was submitted under.
    pub fn with_request_id(mut self, request_id: String) -> Job {
        self.request_id = request_id;
        self
    }

    /// A freshly completed job (a cache hit: terminal on arrival).
    pub fn new_done(id: u64, spec: JobSpec, outcome: JobOutcome) -> Job {
        let job = Job::new(id, spec);
        job.finish(JobStatus::Done, Some(outcome));
        job
    }

    /// A cache-integrity replay of `spec`, verified against the cached
    /// outcome keyed by `digest` when it finishes.
    pub fn new_verify(id: u64, spec: JobSpec, digest: u64) -> Job {
        let mut job = Job::new(id, spec);
        job.verify_against = Some(digest);
        job
    }

    /// Current status.
    pub fn status(&self) -> JobStatus {
        self.lock().status
    }

    /// Transitions `Queued -> Running`; false if the job was already
    /// cancelled (the worker then skips it).
    pub fn start(&self) -> bool {
        let mut s = self.lock();
        if s.status == JobStatus::Queued && !self.cancel.is_cancelled() {
            s.status = JobStatus::Running;
            true
        } else {
            if s.status == JobStatus::Queued {
                s.status = JobStatus::Cancelled;
            }
            false
        }
    }

    /// Records the terminal state and outcome.
    pub fn finish(&self, status: JobStatus, outcome: Option<JobOutcome>) {
        let mut s = self.lock();
        s.status = status;
        s.outcome = outcome;
    }

    /// Requests cancellation; returns the status after the request.
    pub fn request_cancel(&self) -> JobStatus {
        self.cancel.cancel();
        let mut s = self.lock();
        if s.status == JobStatus::Queued {
            s.status = JobStatus::Cancelled;
        }
        s.status
    }

    /// Records a soak job's terminal state and outcome.
    pub fn finish_soak(&self, status: JobStatus, outcome: Option<SoakOutcome>) {
        let mut s = self.lock();
        s.status = status;
        s.soak_outcome = outcome;
    }

    /// A clone of the outcome, if terminal.
    pub fn outcome(&self) -> Option<JobOutcome> {
        self.lock().outcome.clone()
    }

    /// A clone of the soak outcome, if terminal (soak jobs only).
    pub fn soak_outcome(&self) -> Option<SoakOutcome> {
        self.lock().soak_outcome.clone()
    }

    /// Status JSON for `GET /v1/jobs/{id}`. Soak jobs echo their spec under
    /// `"soak"` and their outcome under `"result"`, same shape as campaigns.
    pub fn status_json(&self) -> Json {
        let (status, outcome, soak_outcome) = {
            let s = self.lock();
            (s.status, s.outcome.clone(), s.soak_outcome.clone())
        };
        let spec_field = match &self.soak {
            Some(soak) => ("soak", soak.to_json()),
            None => ("spec", self.spec.to_json()),
        };
        let snap = self.live.snapshot();
        let mut obj = match Json::obj([
            ("id", Json::u64(self.id)),
            ("status", Json::str(status.label())),
            spec_field,
            (
                "live",
                Json::obj([
                    ("trials", Json::u64(snap.trials)),
                    ("formed", Json::u64(snap.formed)),
                    ("cycles", Json::u64(snap.cycles)),
                    ("bits", Json::u64(snap.bits)),
                    ("busy_secs", Json::f64(snap.busy.as_secs_f64())),
                ]),
            ),
        ]) {
            Json::Obj(m) => m,
            _ => unreachable!("Json::obj returns an object"),
        };
        if let Some(out) = outcome {
            obj.insert("result".to_string(), out.to_json());
        }
        if let Some(out) = soak_outcome {
            obj.insert("result".to_string(), out.to_json());
        }
        Json::Obj(obj)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        // apf-lint: allow(panic-policy, panic-reachability) — lock poisoning means a worker already panicked; propagating the crash is the intended semantics
        self.state.lock().expect("job state lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_round_trips_through_json() {
        let spec = JobSpec::default();
        let body = spec.to_json().render();
        let back = JobSpec::from_json_bytes(body.as_bytes()).unwrap();
        assert_eq!(back, spec);

        let sharded = JobSpec { range: Some((2, 5)), detail: true, ..JobSpec::default() };
        let body = sharded.to_json().render();
        let back = JobSpec::from_json_bytes(body.as_bytes()).unwrap();
        assert_eq!(back, sharded);
    }

    #[test]
    fn rejects_bad_specs() {
        for (body, why) in [
            (r#"[]"#, "not an object"),
            (r#"{"trials":0}"#, "zero trials"),
            (r#"{"trials":1000000}"#, "too many trials"),
            (r#"{"n":4}"#, "too few robots"),
            (r#"{"n":8,"rho":3}"#, "rho does not divide n"),
            (r#"{"budget":0}"#, "zero budget"),
            (r#"{"seed":-1}"#, "negative seed"),
            (r#"{"seed":1.5}"#, "fractional seed"),
            (r#"{"bogus":1}"#, "unknown field"),
            (r#"{"scheduler":"serial"}"#, "unknown scheduler"),
            (r#"{"range":[5,2]}"#, "backwards range"),
            (r#"{"range":[0,9]}"#, "range beyond trials"),
            (r#"{"range":[0]}"#, "range not a pair"),
            (r#"{"detail":1}"#, "non-boolean detail"),
            (r#"not json"#, "malformed"),
        ] {
            assert!(JobSpec::from_json_bytes(body.as_bytes()).is_err(), "accepted {why}: {body}");
        }
    }

    #[test]
    fn canonicalization_is_field_order_independent() {
        // Submitting the same values with fields in any order (and defaults
        // spelled out or omitted) must hit the same content address — the
        // cache-key property.
        let a = JobSpec::from_json_bytes(br#"{"seed":7,"trials":4,"name":"x"}"#).unwrap();
        let b = JobSpec::from_json_bytes(
            br#"{"name":"x","budget":2000000,"trials":4,"rho":4,"generator":"symmetric","n":8,"seed":7}"#,
        )
        .unwrap();
        assert_eq!(a.canonical.digest(), b.canonical.digest());
        assert_eq!(a.canonical.canonical_json(), b.canonical.canonical_json());
        // The transport extensions do not perturb the canonical identity.
        let c = JobSpec::from_json_bytes(
            br#"{"seed":7,"trials":4,"name":"x","range":[0,2],"detail":true}"#,
        )
        .unwrap();
        assert_eq!(a.canonical.digest(), c.canonical.digest());
        assert!(!c.cacheable());
        assert!(a.cacheable());
    }

    #[test]
    fn outcome_round_trips_through_json_bitwise() {
        let mut trial = RunResult {
            formed: true,
            steps: 12345,
            cycles: 678,
            bits: 91,
            distance: 0.1 + 0.2, // a value with no short decimal form
            ..RunResult::default()
        };
        trial.phase_cycles[3] = 17;
        trial.phase_bits[5] = u64::MAX;
        let outcome = JobOutcome {
            trials: 2,
            requested: 3,
            formed: 1,
            success: 1.0 / 3.0,
            mean_cycles: 678.0,
            median_cycles: 678.0,
            p95_cycles: 678.0,
            mean_bits: 91.0,
            bits_per_cycle: 91.0 / 678.0,
            digests: vec![u64::MAX, 0, 0xDEAD_BEEF],
            wall_secs: 0.25,
            detail: Some(vec![trial, RunResult::default()]),
            cached: false,
        };
        let back = JobOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
        // Bitwise, not approximately: the floats must survive exactly.
        assert_eq!(back.success.to_bits(), outcome.success.to_bits());
        assert_eq!(
            back.detail.as_ref().unwrap()[0].distance.to_bits(),
            outcome.detail.as_ref().unwrap()[0].distance.to_bits()
        );
    }

    #[test]
    fn job_lifecycle_transitions() {
        let job = Job::new(1, JobSpec::default());
        assert_eq!(job.status(), JobStatus::Queued);
        assert!(job.start());
        assert_eq!(job.status(), JobStatus::Running);
        job.finish(JobStatus::Done, None);
        assert!(job.status().is_terminal());

        let cancelled = Job::new(2, JobSpec::default());
        assert_eq!(cancelled.request_cancel(), JobStatus::Cancelled);
        assert!(!cancelled.start(), "cancelled-in-queue job must not start");
        assert_eq!(cancelled.status(), JobStatus::Cancelled);
    }
}
