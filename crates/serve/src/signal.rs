//! SIGTERM / SIGINT → a process-wide shutdown flag.
//!
//! The workspace is offline (no `libc`/`signal-hook`), so the handler is
//! registered through the C `signal(2)` entry point libc already links in.
//! This is the only unsafe code in the workspace; the handler body does the
//! single async-signal-safe thing — a relaxed store to a static atomic —
//! and everything else polls that flag from ordinary threads.
//!
//! On non-Unix targets the module compiles to a no-op registration: tests
//! and programmatic shutdown use [`shutdown_flag`] directly.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or [`request_shutdown`]) has been seen.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Raises the shutdown flag programmatically (tests, `DELETE`-all paths).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Clears the flag (test isolation only; a real process shuts down once).
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Release);
}

/// The process-wide flag, for wiring into polling loops.
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

#[cfg(unix)]
#[allow(unsafe_code)] // the workspace-wide deny is lifted for exactly this registration
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: a store to a static atomic.
        SHUTDOWN.store(true, Ordering::Release);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the C standard library's registration entry
        // point; `on_signal` is an `extern "C" fn(i32)` whose body is
        // async-signal-safe. Errors (SIG_ERR) are ignored: the fallback is
        // the default disposition, i.e. un-graceful exit.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs SIGTERM and SIGINT handlers that raise the shutdown flag.
/// Idempotent; a no-op off Unix.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_round_trip() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }
}
