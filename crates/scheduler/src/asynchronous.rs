//! Fully asynchronous (ASYNC) adversarial scheduler.

use crate::{Action, PhaseView, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the ASYNC adversary.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Probability that a robot with a pending path *pauses* this step
    /// (stays mid-move, observable by others) instead of progressing.
    pub pause_prob: f64,
    /// Probability that a Move slice ends the phase (given the progress rule
    /// is satisfiable); lower values produce longer, more fragmented moves.
    pub stop_prob: f64,
    /// Largest fraction of the remaining path traveled per slice.
    pub max_slice_fraction: f64,
    /// Number of robots considered per step.
    pub batch_size: usize,
    /// Forced activation after this many consecutive idle steps (fairness).
    pub starvation_bound: u32,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            pause_prob: 0.25,
            stop_prob: 0.4,
            max_slice_fraction: 0.6,
            batch_size: 2,
            starvation_bound: 256,
        }
    }
}

/// The full ASYNC adversary: arbitrary interleavings of Look and Move
/// events, partial moves, and pauses.
///
/// Each step it samples a batch of robots; idle robots Look, pending robots
/// either pause (with [`AsyncConfig::pause_prob`]) or travel a random slice
/// of their remaining path, ending the phase with
/// [`AsyncConfig::stop_prob`]. An aging counter forces activation of any
/// robot ignored for [`AsyncConfig::starvation_bound`] steps, making every
/// schedule fair by construction.
#[derive(Debug, Clone)]
pub struct AsyncScheduler {
    rng: StdRng,
    config: AsyncConfig,
    idle_steps: Vec<u32>,
}

impl AsyncScheduler {
    /// Creates an ASYNC scheduler with default adversary knobs.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, AsyncConfig::default())
    }

    /// Creates an ASYNC scheduler with explicit adversary knobs.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are outside `[0, 1]`, the slice fraction is
    /// not in `(0, 1]`, or `batch_size` is zero.
    pub fn with_config(seed: u64, config: AsyncConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.pause_prob), "pause_prob out of range");
        assert!((0.0..=1.0).contains(&config.stop_prob), "stop_prob out of range");
        assert!(
            config.max_slice_fraction > 0.0 && config.max_slice_fraction <= 1.0,
            "max_slice_fraction must be in (0, 1]"
        );
        assert!(config.batch_size > 0, "batch_size must be positive");
        AsyncScheduler { rng: StdRng::seed_from_u64(seed), config, idle_steps: Vec::new() }
    }

    fn act_on(&mut self, robot: usize, phase: PhaseView) -> Option<Action> {
        match phase {
            PhaseView::Idle => Some(Action::Look { robot }),
            PhaseView::Pending { .. } => {
                if self.rng.gen_bool(self.config.pause_prob) {
                    return None; // pause: observable mid-move
                }
                let remaining = phase.remaining();
                let frac = self.rng.gen_range(0.0..=self.config.max_slice_fraction);
                let distance = remaining * frac;
                let end_phase = self.rng.gen_bool(self.config.stop_prob);
                Some(Action::Move { robot, distance, end_phase })
            }
        }
    }
}

impl Scheduler for AsyncScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        let n = phases.len();
        self.idle_steps.resize(n, 0);
        for c in self.idle_steps.iter_mut() {
            *c += 1;
        }

        let mut batch = Vec::new();
        // Forced activations first (fairness).
        for (robot, phase) in phases.iter().enumerate() {
            if self.idle_steps[robot] >= self.config.starvation_bound {
                self.idle_steps[robot] = 0;
                // A starved pending robot must make progress, not pause.
                let act = match *phase {
                    PhaseView::Idle => Action::Look { robot },
                    p @ PhaseView::Pending { .. } => {
                        Action::Move { robot, distance: p.remaining(), end_phase: true }
                    }
                };
                batch.push(act);
            }
        }

        for _ in 0..self.config.batch_size {
            let robot = self.rng.gen_range(0..n);
            if batch.iter().any(|a| a.robot() == robot) {
                continue;
            }
            if let Some(act) = self.act_on(robot, phases[robot]) {
                self.idle_steps[robot] = 0;
                batch.push(act);
            }
        }

        if batch.is_empty() {
            // Never return an empty step: pick one robot and force progress.
            let robot = self.rng.gen_range(0..n);
            self.idle_steps[robot] = 0;
            batch.push(match phases[robot] {
                PhaseView::Idle => Action::Look { robot },
                p @ PhaseView::Pending { .. } => {
                    Action::Move { robot, distance: p.remaining() * 0.5, end_phase: false }
                }
            });
        }
        batch
    }

    fn name(&self) -> &'static str {
        "async"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let phases = vec![PhaseView::Idle; 6];
        let mut a = AsyncScheduler::new(42);
        let mut b = AsyncScheduler::new(42);
        for _ in 0..50 {
            assert_eq!(a.next(&phases), b.next(&phases));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let phases = vec![PhaseView::Idle; 6];
        let mut a = AsyncScheduler::new(1);
        let mut b = AsyncScheduler::new(2);
        let seq_a: Vec<_> = (0..20).flat_map(|_| a.next(&phases)).collect();
        let seq_b: Vec<_> = (0..20).flat_map(|_| b.next(&phases)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn steps_are_never_empty() {
        let mut s = AsyncScheduler::with_config(
            9,
            AsyncConfig { pause_prob: 0.99, ..AsyncConfig::default() },
        );
        let phases = vec![PhaseView::Pending { length: 1.0, traveled: 0.0 }; 4];
        for _ in 0..200 {
            assert!(!s.next(&phases).is_empty());
        }
    }

    #[test]
    fn fairness_under_heavy_pausing() {
        let mut s = AsyncScheduler::with_config(
            5,
            AsyncConfig { pause_prob: 0.9, starvation_bound: 50, ..AsyncConfig::default() },
        );
        let phases = vec![PhaseView::Idle; 10];
        let mut seen = vec![0u32; 10];
        for _ in 0..5000 {
            for a in s.next(&phases) {
                seen[a.robot()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "fairness violated: {seen:?}");
    }

    #[test]
    fn moves_target_pending_robots_only() {
        let mut s = AsyncScheduler::new(3);
        let phases = vec![PhaseView::Idle, PhaseView::Pending { length: 2.0, traveled: 1.0 }];
        for _ in 0..200 {
            for a in s.next(&phases) {
                match a {
                    Action::Look { robot } => assert_eq!(robot, 0),
                    Action::Move { robot, .. } => assert_eq!(robot, 1),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn zero_batch_panics() {
        AsyncScheduler::with_config(0, AsyncConfig { batch_size: 0, ..AsyncConfig::default() });
    }
}
