//! Scheduler selection by name.

use crate::{
    AsyncConfig, AsyncScheduler, FsyncScheduler, RoundRobinScheduler, Scheduler, SsyncScheduler,
};

/// The three execution models of the literature plus the deterministic test
/// schedule, as a value (handy for sweeping experiments over models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Fully synchronous lock-step rounds.
    Fsync,
    /// Semi-synchronous: random subsets, atomic cycles.
    Ssync,
    /// Fully asynchronous adversary (partial moves, pauses, stale views).
    Async,
    /// Deterministic round-robin ASYNC schedule.
    RoundRobin,
}

impl SchedulerKind {
    /// Instantiates the scheduler with the given seed (ignored by the
    /// deterministic kinds).
    pub fn build(self, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fsync => Box::new(FsyncScheduler::new()),
            SchedulerKind::Ssync => Box::new(SsyncScheduler::new(seed, 0.5)),
            SchedulerKind::Async => Box::new(AsyncScheduler::new(seed)),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new(3)),
        }
    }

    /// Instantiates an ASYNC scheduler with explicit adversary knobs
    /// (other kinds ignore the config).
    pub fn build_with_async_config(self, seed: u64, config: AsyncConfig) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Async => Box::new(AsyncScheduler::with_config(seed, config)),
            other => other.build(seed),
        }
    }

    /// All kinds, for experiment sweeps.
    pub fn all() -> [SchedulerKind; 4] {
        [
            SchedulerKind::Fsync,
            SchedulerKind::Ssync,
            SchedulerKind::Async,
            SchedulerKind::RoundRobin,
        ]
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulerKind::Fsync => "FSYNC",
            SchedulerKind::Ssync => "SSYNC",
            SchedulerKind::Async => "ASYNC",
            SchedulerKind::RoundRobin => "ROUND-ROBIN",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhaseView;

    #[test]
    fn build_produces_working_schedulers() {
        let idle = vec![PhaseView::Idle; 4];
        for kind in SchedulerKind::all() {
            let mut s = kind.build(7);
            assert!(!s.next(&idle).is_empty(), "{kind}");
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerKind::Async.to_string(), "ASYNC");
        assert_eq!(SchedulerKind::Fsync.to_string(), "FSYNC");
    }
}
