//! Semi-synchronous (SSYNC) scheduler.

use crate::{Action, PhaseView, Scheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SSYNC: in each round a non-empty random subset of the idle robots
/// performs an *atomic* Look-Compute-Move cycle.
///
/// Atomicity is realized by finishing every pending Move (issued in the
/// previous round) before the next Look batch, so no robot ever observes
/// another robot mid-move — the defining property of SSYNC.
///
/// Fairness: each robot joins a round independently with probability
/// `p_active`, plus a forced inclusion when it has been left out for
/// `starvation_bound` consecutive rounds.
#[derive(Debug, Clone)]
pub struct SsyncScheduler {
    rng: StdRng,
    p_active: f64,
    starvation_bound: u32,
    skipped: Vec<u32>,
}

impl SsyncScheduler {
    /// Creates an SSYNC scheduler with activation probability `p_active`.
    ///
    /// # Panics
    ///
    /// Panics if `p_active` is not in `(0, 1]`.
    pub fn new(seed: u64, p_active: f64) -> Self {
        assert!(p_active > 0.0 && p_active <= 1.0, "p_active must be in (0, 1]");
        SsyncScheduler {
            rng: StdRng::seed_from_u64(seed),
            p_active,
            starvation_bound: 64,
            skipped: Vec::new(),
        }
    }
}

impl Scheduler for SsyncScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        let n = phases.len();
        self.skipped.resize(n, 0);

        // Finish every pending move first: SSYNC cycles are atomic.
        let moves: Vec<Action> = phases
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_idle())
            .map(|(robot, p)| Action::Move { robot, distance: p.remaining(), end_phase: true })
            .collect();
        if !moves.is_empty() {
            return moves;
        }

        // All idle: pick the next round's participants.
        let mut batch = Vec::new();
        for robot in 0..n {
            let forced = self.skipped[robot] >= self.starvation_bound;
            if forced || self.rng.gen_bool(self.p_active) {
                self.skipped[robot] = 0;
                batch.push(Action::Look { robot });
            } else {
                self.skipped[robot] += 1;
            }
        }
        if batch.is_empty() {
            // A round activates at least one robot.
            let robot = self.rng.gen_range(0..n);
            self.skipped[robot] = 0;
            batch.push(Action::Look { robot });
        }
        batch
    }

    fn name(&self) -> &'static str {
        "ssync"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_moves_complete_before_next_round() {
        let mut s = SsyncScheduler::new(7, 0.5);
        let phases = vec![PhaseView::Pending { length: 1.0, traveled: 0.2 }, PhaseView::Idle];
        let acts = s.next(&phases);
        assert_eq!(acts.len(), 1);
        assert!(matches!(acts[0], Action::Move { robot: 0, end_phase: true, .. }));
    }

    #[test]
    fn rounds_are_nonempty() {
        let mut s = SsyncScheduler::new(3, 0.01);
        let idle = vec![PhaseView::Idle; 5];
        for _ in 0..100 {
            assert!(!s.next(&idle).is_empty());
        }
    }

    #[test]
    fn no_starvation() {
        let mut s = SsyncScheduler::new(11, 0.2);
        let idle = vec![PhaseView::Idle; 8];
        let mut seen = vec![0u32; 8];
        for _ in 0..2000 {
            for a in s.next(&idle) {
                seen[a.robot()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c > 0), "all robots must be activated: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "p_active")]
    fn invalid_probability_panics() {
        SsyncScheduler::new(0, 0.0);
    }
}
