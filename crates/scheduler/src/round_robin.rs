//! Deterministic round-robin ASYNC scheduler (for reproducible tests).

use crate::{Action, PhaseView, Scheduler};

/// Activates robots one at a time in index order; each activation either
/// Looks (idle robot) or advances the pending path by a fixed number of
/// slices before ending the phase.
///
/// This is an ASYNC schedule (Look and Move of different robots interleave),
/// but a fully deterministic one — useful for unit tests that need exact
/// repeatability without seeding.
#[derive(Debug, Clone)]
pub struct RoundRobinScheduler {
    cursor: usize,
    slices: u32,
    progress: u32,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler that splits each Move phase into
    /// `slices` equal slices.
    ///
    /// # Panics
    ///
    /// Panics if `slices` is zero.
    pub fn new(slices: u32) -> Self {
        assert!(slices > 0, "slices must be positive");
        RoundRobinScheduler { cursor: 0, slices, progress: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        let n = phases.len();
        let robot = self.cursor % n;
        match phases[robot] {
            PhaseView::Idle => {
                self.cursor += 1;
                self.progress = 0;
                vec![Action::Look { robot }]
            }
            p @ PhaseView::Pending { .. } => {
                self.progress += 1;
                let end_phase = self.progress >= self.slices;
                let distance = if end_phase {
                    p.remaining()
                } else {
                    p.remaining() / (self.slices - self.progress + 1) as f64
                };
                if end_phase {
                    self.cursor += 1;
                    self.progress = 0;
                }
                vec![Action::Move { robot, distance, end_phase }]
            }
        }
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_all_robots_in_order() {
        let mut s = RoundRobinScheduler::new(1);
        let idle = vec![PhaseView::Idle; 3];
        for expect in [0usize, 1, 2, 0, 1] {
            let acts = s.next(&idle);
            assert_eq!(acts, vec![Action::Look { robot: expect }]);
        }
    }

    #[test]
    fn slices_split_the_move() {
        let mut s = RoundRobinScheduler::new(2);
        let idle = vec![PhaseView::Idle; 1];
        assert_eq!(s.next(&idle), vec![Action::Look { robot: 0 }]);
        let pending = vec![PhaseView::Pending { length: 2.0, traveled: 0.0 }];
        let first = s.next(&pending);
        match first[0] {
            Action::Move { distance, end_phase, .. } => {
                assert!(!end_phase);
                assert!((distance - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected a move"),
        }
        let half = vec![PhaseView::Pending { length: 2.0, traveled: 1.0 }];
        let second = s.next(&half);
        match second[0] {
            Action::Move { distance, end_phase, .. } => {
                assert!(end_phase);
                assert!((distance - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected a move"),
        }
    }

    #[test]
    #[should_panic(expected = "slices")]
    fn zero_slices_panics() {
        RoundRobinScheduler::new(0);
    }
}
