//! Adversarial schedulers for Look-Compute-Move robot simulations.
//!
//! The ASYNC model quantifies over *all* fair activation schedules: the
//! adversary decides when each robot Looks, how long it Computes, how far it
//! travels in each slice of its Move phase, and when it pauses — subject to
//! (i) fairness (every robot is activated infinitely often) and (ii) the
//! minimum-progress rule (a Move phase ends only after the robot traveled at
//! least `δ` toward its destination, unless it arrived).
//!
//! The simulation engine (`apf-sim`) is event-driven: at every step it asks
//! the [`Scheduler`] for a batch of [`Action`]s given a view of each robot's
//! phase. Staleness arises naturally: a robot Looks at one step and Moves at
//! later steps, with other robots acting in between — and a paused robot is
//! observed mid-move exactly like a static one.
//!
//! Provided schedulers:
//!
//! * [`FsyncScheduler`] — lock-step rounds: everyone Looks, then everyone
//!   Moves to completion;
//! * [`SsyncScheduler`] — a random non-empty subset per round, each
//!   performing an atomic Look + full Move;
//! * [`AsyncScheduler`] — the full adversary: random interleavings, partial
//!   moves, pauses (with an aging bonus that enforces fairness);
//! * [`RoundRobinScheduler`] — a deterministic ASYNC schedule for
//!   reproducible unit tests;
//! * [`ScriptedScheduler`] — replays a recorded action script with legality
//!   filtering, so edited/shrunk schedules stay executable (the conformance
//!   fuzzer's counterexample reducer is built on it).

#![forbid(unsafe_code)]

pub mod action;
pub mod asynchronous;
pub mod fsync;
pub mod kind;
pub mod round_robin;
pub mod scripted;
pub mod ssync;

pub use action::{Action, PhaseView};
pub use asynchronous::{AsyncConfig, AsyncScheduler};
pub use fsync::FsyncScheduler;
pub use kind::SchedulerKind;
pub use round_robin::RoundRobinScheduler;
pub use scripted::ScriptedScheduler;
pub use ssync::SsyncScheduler;

/// A scheduling adversary: decides which robots act, and how far moving
/// robots travel, at each engine step.
///
/// Implementations must be *fair*: every robot is scheduled infinitely often
/// in an infinite execution (deterministically or with probability 1).
pub trait Scheduler {
    /// Returns the actions for the next engine step.
    ///
    /// `phases[i]` describes robot `i`'s current phase. The returned batch
    /// must be non-empty whenever at least one robot exists, and must only
    /// reference legal transitions (Look for idle robots, Move for robots
    /// with a pending path); the engine validates and panics on violations,
    /// since a buggy scheduler would silently invalidate every experiment.
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action>;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}
