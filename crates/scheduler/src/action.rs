//! Scheduler ↔ engine interface types.

/// The engine's view of one robot's phase, passed to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseView {
    /// The robot is idle: its next activation is a Look.
    Idle,
    /// The robot has a pending computed path (it is between Look and the end
    /// of its Move phase).
    Pending {
        /// Total curvilinear length of the computed path.
        length: f64,
        /// Distance already traveled along the path in this Move phase.
        traveled: f64,
    },
}

impl PhaseView {
    /// Whether the robot is idle.
    pub fn is_idle(&self) -> bool {
        matches!(self, PhaseView::Idle)
    }

    /// Remaining distance of the pending path (0 for idle robots).
    pub fn remaining(&self) -> f64 {
        match *self {
            PhaseView::Idle => 0.0,
            PhaseView::Pending { length, traveled } => (length - traveled).max(0.0),
        }
    }
}

/// One scheduled action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// The robot takes a snapshot and computes its path (entering the
    /// Pending phase). Legal only for idle robots.
    Look {
        /// The robot to activate.
        robot: usize,
    },
    /// The robot travels `distance` along its pending path. If `end_phase`
    /// is set, its Move phase ends afterwards (the engine enforces the
    /// minimum-progress rule `δ` before honoring it). Legal only for robots
    /// in the Pending phase.
    Move {
        /// The robot to advance.
        robot: usize,
        /// Requested travel distance for this slice (clamped by the engine).
        distance: f64,
        /// Whether the Move phase should end after this slice.
        end_phase: bool,
    },
}

impl Action {
    /// The robot this action addresses.
    pub fn robot(&self) -> usize {
        match *self {
            Action::Look { robot } => robot,
            Action::Move { robot, .. } => robot,
        }
    }

    /// Whether this is a Look action (used by the engine's step-level trace
    /// events to split a batch into looks and moves).
    pub fn is_look(&self) -> bool {
        matches!(self, Action::Look { .. })
    }

    /// Whether this is a Move action.
    pub fn is_move(&self) -> bool {
        matches!(self, Action::Move { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_view_remaining() {
        assert_eq!(PhaseView::Idle.remaining(), 0.0);
        let p = PhaseView::Pending { length: 3.0, traveled: 1.0 };
        assert_eq!(p.remaining(), 2.0);
        assert!(!p.is_idle());
        let done = PhaseView::Pending { length: 1.0, traveled: 2.0 };
        assert_eq!(done.remaining(), 0.0);
    }

    #[test]
    fn action_robot_accessor() {
        assert_eq!(Action::Look { robot: 3 }.robot(), 3);
        assert_eq!(Action::Move { robot: 5, distance: 0.1, end_phase: true }.robot(), 5);
    }

    #[test]
    fn action_kind_predicates() {
        let look = Action::Look { robot: 0 };
        let mv = Action::Move { robot: 0, distance: 0.1, end_phase: false };
        assert!(look.is_look() && !look.is_move());
        assert!(mv.is_move() && !mv.is_look());
    }
}
