//! A scheduler that replays a recorded action script.

use crate::{Action, PhaseView, Scheduler};

/// Replays a pre-recorded schedule (a list of action batches), filtering
/// out actions that are illegal in the world's *current* state.
///
/// The filter is what makes scripts **editable**: a schedule recorded from
/// a live run stays legal verbatim, but a shrinker that deletes batches (or
/// a human trimming a reproducer by hand) leaves dangling actions — a Move
/// for a robot whose Look was deleted, a Look for a robot still mid-move.
/// Instead of panicking the engine, those actions are silently dropped and
/// the remaining prefix keeps its meaning. This is exactly the replay
/// mechanism the conformance fuzzer's counterexample shrinking relies on.
///
/// When a batch filters to empty (or the script is exhausted) the scheduler
/// substitutes one legal fallback action, rotating through robots so the
/// fallback itself is fair: the engine's non-empty-step invariant holds for
/// any script.
#[derive(Debug, Clone)]
pub struct ScriptedScheduler {
    script: Vec<Vec<Action>>,
    cursor: usize,
    fallback_rotor: usize,
}

impl ScriptedScheduler {
    /// A scheduler replaying `script` batch by batch.
    pub fn new(script: Vec<Vec<Action>>) -> Self {
        ScriptedScheduler { script, cursor: 0, fallback_rotor: 0 }
    }

    /// Batches not yet replayed.
    pub fn remaining(&self) -> usize {
        self.script.len().saturating_sub(self.cursor)
    }

    /// Whether the script has been fully consumed.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn legal(action: &Action, phases: &[PhaseView]) -> bool {
        let robot = action.robot();
        match phases.get(robot) {
            Some(p) => {
                if action.is_look() {
                    p.is_idle()
                } else {
                    !p.is_idle()
                }
            }
            None => false,
        }
    }

    /// One legal action for the current state, rotating the starting robot
    /// so repeated fallbacks activate everyone.
    fn fallback(&mut self, phases: &[PhaseView]) -> Action {
        let n = phases.len();
        assert!(n > 0, "cannot schedule an empty world");
        // Any robot has a legal action (Look if idle, Move otherwise), so a
        // plain rotor is enough for fairness.
        let robot = self.fallback_rotor % n;
        self.fallback_rotor = self.fallback_rotor.wrapping_add(1);
        match phases[robot] {
            PhaseView::Idle => Action::Look { robot },
            p @ PhaseView::Pending { .. } => {
                Action::Move { robot, distance: p.remaining(), end_phase: true }
            }
        }
    }

    /// The number of batches consumed so far (including filtered ones).
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for ScriptedScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        while self.cursor < self.script.len() {
            let batch = &self.script[self.cursor];
            self.cursor += 1;
            let mut filtered: Vec<Action> = Vec::with_capacity(batch.len());
            for action in batch {
                // Keep the first action per robot; a deleted Look can
                // otherwise leave two Moves racing for the same robot.
                if Self::legal(action, phases)
                    && !filtered.iter().any(|a| a.robot() == action.robot())
                {
                    filtered.push(*action);
                }
            }
            if !filtered.is_empty() {
                return filtered;
            }
            // The whole batch was illegal after edits: fall through to the
            // next scripted batch rather than inventing actions mid-script.
        }
        vec![self.fallback(phases)]
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(n: usize) -> Vec<PhaseView> {
        vec![PhaseView::Idle; n]
    }

    #[test]
    fn replays_legal_batches_verbatim() {
        let script = vec![
            vec![Action::Look { robot: 0 }, Action::Look { robot: 1 }],
            vec![Action::Look { robot: 2 }],
        ];
        let mut s = ScriptedScheduler::new(script.clone());
        assert_eq!(s.next(&idle(3)), script[0]);
        assert_eq!(s.next(&idle(3)), script[1]);
        assert!(s.exhausted());
    }

    #[test]
    fn filters_illegal_actions_after_edits() {
        // A Move for an idle robot (its Look was "deleted") is dropped;
        // the legal Look in the same batch survives.
        let script = vec![vec![
            Action::Move { robot: 0, distance: 1.0, end_phase: true },
            Action::Look { robot: 1 },
        ]];
        let mut s = ScriptedScheduler::new(script);
        assert_eq!(s.next(&idle(2)), vec![Action::Look { robot: 1 }]);
    }

    #[test]
    fn duplicate_robot_actions_keep_only_the_first() {
        let phases = vec![PhaseView::Pending { length: 2.0, traveled: 0.0 }];
        let script = vec![vec![
            Action::Move { robot: 0, distance: 0.5, end_phase: false },
            Action::Move { robot: 0, distance: 1.5, end_phase: true },
        ]];
        let mut s = ScriptedScheduler::new(script);
        assert_eq!(
            s.next(&phases),
            vec![Action::Move { robot: 0, distance: 0.5, end_phase: false }]
        );
    }

    #[test]
    fn empty_batches_skip_to_the_next_scripted_batch() {
        let script = vec![
            vec![Action::Move { robot: 0, distance: 1.0, end_phase: true }], // illegal
            vec![Action::Look { robot: 1 }],                                 // legal
        ];
        let mut s = ScriptedScheduler::new(script);
        assert_eq!(s.next(&idle(2)), vec![Action::Look { robot: 1 }]);
        assert_eq!(s.consumed(), 2, "the illegal batch was consumed, not stalled on");
    }

    #[test]
    fn exhausted_script_falls_back_fairly_and_never_empties() {
        let mut s = ScriptedScheduler::new(Vec::new());
        let mut seen = [false; 3];
        for _ in 0..9 {
            let batch = s.next(&idle(3));
            assert_eq!(batch.len(), 1);
            seen[batch[0].robot()] = true;
        }
        assert!(seen.iter().all(|&b| b), "fallback must rotate robots: {seen:?}");
    }

    #[test]
    fn fallback_moves_pending_robots_to_completion() {
        let mut s = ScriptedScheduler::new(Vec::new());
        let phases = vec![PhaseView::Pending { length: 3.0, traveled: 1.0 }];
        match s.next(&phases)[0] {
            Action::Move { robot: 0, distance, end_phase: true } => {
                assert!((distance - 2.0).abs() < 1e-12);
            }
            other => panic!("expected a finishing move, got {other:?}"),
        }
    }
}
