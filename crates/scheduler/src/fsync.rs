//! Fully synchronous (FSYNC) scheduler.

use crate::{Action, PhaseView, Scheduler};

/// Lock-step rounds: when all robots are idle, everyone Looks
/// simultaneously; afterwards everyone completes its full Move in one batch.
///
/// Snapshots in a round are mutually consistent (all taken in the same
/// batch, before any movement), which is exactly the FSYNC model.
#[derive(Debug, Default, Clone)]
pub struct FsyncScheduler;

impl FsyncScheduler {
    /// Creates an FSYNC scheduler.
    pub fn new() -> Self {
        FsyncScheduler
    }
}

impl Scheduler for FsyncScheduler {
    fn next(&mut self, phases: &[PhaseView]) -> Vec<Action> {
        if phases.iter().all(|p| p.is_idle()) {
            (0..phases.len()).map(|robot| Action::Look { robot }).collect()
        } else {
            phases
                .iter()
                .enumerate()
                .filter(|(_, p)| !p.is_idle())
                .map(|(robot, p)| Action::Move { robot, distance: p.remaining(), end_phase: true })
                .collect()
        }
    }

    fn name(&self) -> &'static str {
        "fsync"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_look_and_move_rounds() {
        let mut s = FsyncScheduler::new();
        let idle = vec![PhaseView::Idle; 3];
        let looks = s.next(&idle);
        assert_eq!(looks.len(), 3);
        assert!(looks.iter().all(|a| matches!(a, Action::Look { .. })));

        let pending = vec![PhaseView::Pending { length: 1.0, traveled: 0.0 }; 3];
        let moves = s.next(&pending);
        assert_eq!(moves.len(), 3);
        assert!(moves.iter().all(|a| matches!(a, Action::Move { end_phase: true, .. })));
    }

    #[test]
    fn mixed_phase_moves_only_pending() {
        let mut s = FsyncScheduler::new();
        let phases = vec![PhaseView::Idle, PhaseView::Pending { length: 2.0, traveled: 0.5 }];
        let acts = s.next(&phases);
        assert_eq!(acts.len(), 1);
        assert_eq!(acts[0].robot(), 1);
    }
}
