//! Property-based tests of the algorithm's per-cycle contract: on any valid
//! snapshot, `compute` succeeds, returns well-formed paths, and is invariant
//! under the observer's frame.

use apf_core::FormPattern;
use apf_geometry::{Frame, Point, Tol};
use apf_sim::{BitSource, CountingBits, Decision, NullBits, RobotAlgorithm, Snapshot};
use proptest::prelude::*;

fn snapshot_for(pts: &[Point], me: usize, pattern: &[Point], frame: &Frame) -> Snapshot {
    let mut f = *frame;
    f.origin = pts[me];
    let local: Vec<Point> = pts.iter().map(|&p| f.to_local(p)).collect();
    Snapshot::new(local, pattern.to_vec(), false, Tol::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compute_succeeds_on_any_valid_instance(
        seed in 0..10_000u64,
        me in 0..8usize,
        sym in any::<bool>(),
        rot in 0.0..std::f64::consts::TAU,
        scale in 0.3..3.0f64,
        mirror in any::<bool>(),
    ) {
        let pts = if sym {
            apf_patterns::symmetric_configuration(8, 4, seed)
        } else {
            apf_patterns::asymmetric_configuration(8, seed)
        };
        let pattern = apf_patterns::random_pattern(8, seed ^ 0xABCD);
        let frame = Frame::new(Point::ORIGIN, rot, scale, mirror);
        let snap = snapshot_for(&pts, me, &pattern, &frame);
        let alg = FormPattern::new();
        let mut bits = CountingBits::new(seed);
        let d = alg.compute(&snap, &mut bits);
        prop_assert!(d.is_ok(), "compute failed: {:?}", d.err());
        if let Ok(Decision::Move(path)) = d {
            // Paths start at the observer (local origin) and are finite.
            prop_assert!(path.start().dist(Point::ORIGIN) < 1e-6);
            prop_assert!(path.length().is_finite());
            prop_assert!(path.length() > 0.0);
        }
        // The election draws at most one bit per cycle.
        prop_assert!(bits.bits_drawn() <= 1, "bits = {}", bits.bits_drawn());
    }

    #[test]
    fn at_most_one_mover_in_asymmetric_configs(seed in 0..2_000u64) {
        // ψ_RSB|Qc: exactly one robot (the unique max-view robot) moves.
        let pts = apf_patterns::asymmetric_configuration(8, seed);
        let pattern = apf_patterns::random_pattern(8, seed ^ 0x1234);
        let alg = FormPattern::new();
        let mut movers = 0;
        for me in 0..8 {
            let snap = snapshot_for(&pts, me, &pattern, &Frame::identity());
            let mut bits = NullBits;
            if let Decision::Move(_) = alg.compute(&snap, &mut bits).unwrap() {
                movers += 1;
            }
        }
        prop_assert!(movers <= 1, "{movers} movers in a Qc configuration");
    }

    #[test]
    fn election_moves_are_strictly_radial(seed in 0..500u64, me in 0..8usize) {
        // In a regular configuration without a shift, any move produced by
        // the election is radial (preserves the half-line structure —
        // paper Property 2 (M1)) or an on-circle shift-creation arc.
        let pts = apf_patterns::regular_polygon(8, 1.0, (seed as f64) * 0.01);
        let pattern = apf_patterns::random_pattern(8, seed ^ 0x77);
        let snap = snapshot_for(&pts, me, &pattern, &Frame::identity());
        let alg = FormPattern::new();
        let mut bits = CountingBits::new(seed);
        if let Decision::Move(path) = alg.compute(&snap, &mut bits).unwrap() {
            // The configuration center in local coordinates.
            let c_local = (Point::ORIGIN - pts[me].to_vector()).to_vector().to_point();
            let r0 = path.start().dist(c_local);
            let r1 = path.destination().dist(c_local);
            let radial = {
                let v1 = path.start() - c_local;
                let v2 = path.destination() - c_local;
                v1.cross(v2).abs() < 1e-9
            };
            let on_circle = (r0 - r1).abs() < 1e-9;
            prop_assert!(radial || on_circle, "move is neither radial nor on-circle");
        }
    }

    #[test]
    fn terminal_configurations_are_silent(seed in 0..1_000u64, me in 0..8usize) {
        // A configuration that already forms F (exactly) orders no moves.
        let pattern = apf_patterns::random_pattern(8, seed);
        // Place robots exactly at a rotated/scaled copy of the pattern.
        let pts: Vec<Point> = pattern
            .iter()
            .map(|p| Point::new(2.0 * p.y + 1.0, -2.0 * p.x + 0.5))
            .collect();
        let snap = snapshot_for(&pts, me, &pattern, &Frame::identity());
        let alg = FormPattern::new();
        let mut bits = NullBits;
        prop_assert_eq!(alg.compute(&snap, &mut bits).unwrap(), Decision::Stay);
    }
}
