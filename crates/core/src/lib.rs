//! The Bramas–Tixeuil probabilistic asynchronous arbitrary pattern
//! formation algorithm.
//!
//! [`FormPattern`] implements the paper's `formPattern` — the combination
//! `Ψ = {ψ_RSB, ψ_DPF}` of the randomized symmetry-breaking phase and the
//! deterministic, chirality-free formation phase — as an oblivious
//! [`apf_sim::RobotAlgorithm`]: a pure function from one local snapshot (and
//! one random bit) to one movement decision.
//!
//! Dispatch per cycle (the paper's main loop, with each phase ignored when
//! its condition already holds):
//!
//! 1. **Done** — the configuration is similar to `F`: stay (termination
//!    awareness);
//! 2. **Multiplicity preprocessing** (Section 5 / Appendix C) — center
//!    pattern points are relocated into `F̃`, and the final *gather step*
//!    walks the innermost group to the center;
//! 3. **Completion move** — `P − {r} ≈ F − {f}` for an agreed robot `r`:
//!    that robot walks to the last free pattern point;
//! 4. **No selected robot** → [`rsb::select_a_robot`] (randomized election);
//! 5. **Selected robot exists** → [`dpf::act`] (deterministic formation).
//!
//! # Example
//!
//! ```
//! use apf_core::SimulationBuilder;
//! use apf_scheduler::SchedulerKind;
//!
//! let initial = apf_patterns::asymmetric_configuration(7, 42);
//! let target = apf_patterns::random_pattern(7, 7);
//! let mut world = SimulationBuilder::new(initial, target)
//!     .scheduler(SchedulerKind::RoundRobin)
//!     .seed(1)
//!     .build()
//!     .expect("valid instance");
//! let outcome = world.run(200_000);
//! assert!(outcome.formed);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod builder;
pub mod dpf;
pub mod multiplicity;
pub mod rsb;

pub use analysis::Analysis;
pub use builder::{validate_instance, BuildError, SimulationBuilder};

use apf_geometry::{are_similar, match_up_to_similarity, Path, Point};
use apf_sim::{BitSource, ComputeError, Decision, PhaseKind, RobotAlgorithm, Snapshot};

/// The paper's algorithm as an oblivious robot algorithm.
///
/// Stateless by construction: everything is recomputed from the snapshot,
/// which is exactly the oblivious-robot model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FormPattern;

impl FormPattern {
    /// Creates the algorithm.
    pub fn new() -> Self {
        FormPattern
    }
}

impl RobotAlgorithm for FormPattern {
    fn compute(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<Decision, ComputeError> {
        self.compute_tagged(snapshot, bits).map(|(decision, _)| decision)
    }

    fn compute_tagged(
        &self,
        snapshot: &Snapshot,
        bits: &mut dyn BitSource,
    ) -> Result<(Decision, PhaseKind), ComputeError> {
        let mut a = Analysis::new(snapshot)?;
        if a.n() < 7 {
            return Err(ComputeError::new(format!(
                "the algorithm requires n >= 7 robots (Theorem 2), got {}",
                a.n()
            )));
        }
        if a.n() != a.pattern.len() {
            return Err(ComputeError::new(format!(
                "{} robots cannot form a {}-point pattern",
                a.n(),
                a.pattern.len()
            )));
        }

        // 1. Terminal configuration: stay.
        if are_similar(a.config.points(), &a.pattern, &a.tol) {
            return Ok((Decision::Stay, PhaseKind::Terminal));
        }

        // 2. Multiplicity extension: relocate center points (F̃) and run the
        //    final gather step when its condition holds.
        match multiplicity::preprocess(&mut a)? {
            multiplicity::MultiStep::Gather(d) => return Ok((d, PhaseKind::Gather)),
            multiplicity::MultiStep::Proceed | multiplicity::MultiStep::Transformed => {}
        }
        // With F̃ swapped in, the terminal check applies to F̃ as well.
        if are_similar(a.config.points(), &a.pattern, &a.tol) {
            return Ok((Decision::Stay, PhaseKind::Terminal));
        }

        // 3. Completion move: one robot is one move away from finishing.
        if let Some(d) = completion_move(&a)? {
            return Ok((d, PhaseKind::Completion));
        }

        // 4./5. Symmetry breaking, then deterministic formation.
        match a.selected() {
            None => rsb::select_a_robot(&a, bits),
            Some(rs) => dpf::act(&a, rs),
        }
    }

    fn name(&self) -> &'static str {
        "bramas-tixeuil-apf"
    }
}

/// The main algorithm's completion check (lines 1–4): if removing one agreed
/// robot leaves exactly `F` minus one maximal-view point, that robot walks
/// to the free point.
///
/// Exposed for the baseline algorithms, which share the deterministic tail.
///
/// # Errors
///
/// Returns [`ComputeError`] when the similarity witness cannot be
/// reconstructed (cannot happen for configurations the check accepted).
pub fn completion_move(a: &Analysis) -> Result<Option<Decision>, ComputeError> {
    let f_candidates = a.pattern_max_view_nonholders();
    let Some(&f_idx) = f_candidates.first() else {
        return Ok(None);
    };
    let f_rest: Vec<Point> =
        a.pattern.iter().enumerate().filter(|&(i, _)| i != f_idx).map(|(_, &p)| p).collect();

    let finalists: Vec<usize> =
        (0..a.n()).filter(|&r| are_similar(&a.config.without(r), &f_rest, &a.tol)).collect();
    if finalists.is_empty() {
        return Ok(None);
    }
    // Agree on the mover: a unique finalist, else the selected robot, else
    // the unique maximal-view robot.
    let mover = if finalists.len() == 1 {
        finalists[0]
    } else if let Some(rs) = a.selected().filter(|rs| finalists.contains(rs)) {
        rs
    } else {
        let maxi = a.views().max_view_indices();
        match maxi.as_slice() {
            [r] if finalists.contains(r) => *r,
            _ => return Ok(None),
        }
    };

    if a.me != mover {
        return Ok(Some(Decision::Stay));
    }
    // Map the free pattern point into configuration coordinates via the
    // similarity witness.
    let p_rest = a.config.without(mover);
    let map = match_up_to_similarity(&f_rest, &p_rest, &a.tol)
        .ok_or_else(|| ComputeError::new("similarity witness vanished"))?;
    let target = map.apply(a.pattern[f_idx]);
    let path = Path::straight(a.my_pos(), target);
    if path.length() <= a.tol.eps {
        return Ok(Some(Decision::Stay));
    }
    Ok(Some(Decision::Move(a.denormalize_path(&path))))
}
