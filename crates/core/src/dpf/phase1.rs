//! Phase 1: create the global oriented coordinate system `Z`.
//!
//! `Z` is anchored on the selected robot `r_s` and a reference robot
//! `r_max`: center `c(P)`, zero ray through `r_max`, and the rotational
//! orientation that maximizes `r_s`'s polar angle. For `Z` to be stable the
//! configuration must satisfy (Phase Condition):
//!
//! 1. `r_max` is radially minimal in `P − {r_s}`;
//! 2. `r_max` is the unique robot angularly closest to `r_s`;
//! 3. `|r_max| ≤ |f_max|`;
//! 4. the wedge between `r_s` and `r_max` is much narrower than the
//!    clearance around the zero ray — the paper requires
//!    `2·angmin(r_s, c, r_max) < θ_F'`; we strengthen this to
//!    `4·angmin < min(θ_F', θ_safe)` where `θ_safe` is the angular distance
//!    from the zero ray to the nearest off-ray target, so that no target
//!    (hence no settled robot) can ever enter the wedge and steal the
//!    "angularly closest" role from `r_max` during Phases 2–3.
//!
//! When the condition fails, the *selected robot repairs it*: it descends to
//! `c(P)` and re-emerges at a tiny angle next to the closest robot, making
//! that robot the unique `r_max`. If only condition 3 fails, `r_max` itself
//! descends radially to `|f_max|`.

use crate::analysis::Analysis;
use crate::dpf::TargetPlan;
use apf_geometry::angle::{ang_min, normalize_angle, signed_angle_diff};
use apf_geometry::{path, Path, Point, PolarPoint};
use apf_sim::{ComputeError, Decision};

/// Margin factor between the wedge angle and the target clearance.
const WEDGE_FACTOR: f64 = 4.0;
/// Fraction of the feasible radius used when placing the selected robot.
const SELECTED_RADIUS_FACTOR: f64 = 0.4;

/// The global oriented coordinate system `Z`.
#[derive(Debug, Clone, Copy)]
pub struct ZFrame {
    /// Index of the reference robot (zero ray).
    pub rmax: usize,
    /// Angle of `r_max` in normalized coordinates.
    base_angle: f64,
    /// `+1.0` (CCW) or `-1.0` (CW): the direction of increasing `Z`-angles.
    orient: f64,
    /// The selected robot's `Z`-angle (`2π − δ`).
    pub rs_angle: f64,
    /// The wedge half-width `δ = angmin(r_s, c, r_max)`.
    pub delta: f64,
}

impl ZFrame {
    /// `Z`-angle of a normalized point, in `[0, 2π)`.
    ///
    /// Values within numerical noise of `2π` snap to `0`: a robot standing
    /// exactly on the zero ray must sort *first*, not last, or assignment
    /// and blocking logic splits at the wraparound.
    pub fn angle_of(&self, p: Point) -> f64 {
        let pp = PolarPoint::from_cartesian(p, Point::ORIGIN);
        let z = normalize_angle(self.orient * (pp.angle - self.base_angle));
        // The band is deliberately wider than the placement tolerance
        // (robots arrive at zero-ray targets within ~1e-6): a robot parked
        // on the ray must snap under *every* observer's frame noise, or
        // observers disagree on the ordering.
        if std::f64::consts::TAU - z <= 1e-5 {
            0.0
        } else {
            z
        }
    }

    /// Normalized point at the given `Z`-polar coordinates.
    pub fn to_point(&self, radius: f64, z_angle: f64) -> Point {
        let a = self.base_angle + self.orient * z_angle;
        Point::new(radius * a.cos(), radius * a.sin())
    }

    /// Arc path rotating `p` on its circle by `dz` in `Z`-angle (positive =
    /// the `Z` "direct" orientation).
    pub fn rotate(&self, p: Point, dz: f64) -> Path {
        path::rotate_on_circle(Point::ORIGIN, p, self.orient * dz)
    }

    /// Angular ceiling for Phase 2/3 placements: robots must stay below the
    /// selected robot's wedge.
    pub fn upper_bound(&self) -> f64 {
        std::f64::consts::TAU - 3.0 * self.delta
    }
}

/// Result of the Phase-1 dispatcher.
#[derive(Debug)]
pub enum FrameStatus {
    /// The frame exists; later phases may proceed.
    Ready(ZFrame),
    /// Phase 1 is active: the observer's decision this cycle.
    Acting(Decision),
}

/// Establishes the `Z` frame or returns the Phase-1 repair action.
///
/// # Errors
///
/// Never fails for valid inputs; reserved for invariant violations.
pub fn ensure_frame(
    a: &Analysis,
    rs: usize,
    plan: &TargetPlan,
) -> Result<FrameStatus, ComputeError> {
    let tol = &a.tol;
    let rs_pos = a.config.point(rs);
    let rs_r = rs_pos.dist(Point::ORIGIN);
    let others: Vec<usize> = (0..a.n()).filter(|&i| i != rs).collect();
    if others.is_empty() {
        return Err(ComputeError::new("pattern formation needs more than one robot"));
    }

    let clearance = theta_clearance(plan, tol);

    // "At the center" is a relative notion: normalization noise keeps a
    // parked robot a few ulps off the exact origin, so compare against the
    // configuration scale instead of the absolute tolerance.
    let others_min_r = others.iter().map(|&i| a.radius(i)).fold(f64::INFINITY, f64::min);
    if rs_r <= 0.01 * others_min_r.min(a.l_f) {
        // r_s is at the center: re-emerge next to the closest robot.
        if a.me != rs {
            return Ok(FrameStatus::Acting(Decision::Stay));
        }
        return Ok(FrameStatus::Acting(emerge_from_center(a, &others, clearance)));
    }

    // Identify the candidate r_max: radially minimal AND angularly closest.
    let min_r = others.iter().map(|&i| a.radius(i)).fold(f64::INFINITY, f64::min);
    let ang = |i: usize| ang_min(rs_pos, Point::ORIGIN, a.config.point(i));
    let ang_min_all = others.iter().map(|&i| ang(i)).fold(f64::INFINITY, f64::min);
    let candidates: Vec<usize> = others
        .iter()
        .copied()
        .filter(|&i| tol.eq(a.radius(i), min_r) && ang(i) <= ang_min_all + tol.angle_eps)
        .collect();

    if std::env::var_os("APF_DEBUG").is_some() {
        eprintln!(
            "  [phase1 me={} rs={rs}] rs_r={rs_r:.5} min_r={min_r:.5} ang_min_all={ang_min_all:.6} cands={candidates:?} clearance={clearance:.6}",
            a.me
        );
    }
    // Robots stacked on a multiplicity point tie in both radius and angle;
    // they are anonymous and interchangeable, so a fully co-located
    // candidate set is as good as a unique robot.
    let co_located = candidates.len() > 1
        && candidates.windows(2).all(|w| a.config.point(w[0]).approx_eq(a.config.point(w[1]), tol));
    if candidates.len() == 1 || co_located {
        let rmax = candidates[0];
        let delta = ang(rmax);
        // Strengthened condition (iv): the wedge is narrow enough.
        if WEDGE_FACTOR * delta < clearance && delta > tol.angle_eps {
            if tol.le(a.radius(rmax), plan.fmax_radius) {
                // Frame ready.
                let base_angle =
                    PolarPoint::from_cartesian(a.config.point(rmax), Point::ORIGIN).angle;
                let rs_raw = normalize_angle(
                    PolarPoint::from_cartesian(rs_pos, Point::ORIGIN).angle - base_angle,
                );
                let orient = if rs_raw >= std::f64::consts::PI { 1.0 } else { -1.0 };
                let rs_angle = if orient > 0.0 { rs_raw } else { normalize_angle(-rs_raw) };
                return Ok(FrameStatus::Ready(ZFrame {
                    rmax,
                    base_angle,
                    orient,
                    rs_angle,
                    delta,
                }));
            }
            // Condition (iii) fails: r_max descends radially to |f_max|.
            if a.me == rmax {
                let p = path::radial_to(Point::ORIGIN, a.config.point(rmax), plan.fmax_radius);
                return Ok(FrameStatus::Acting(Decision::Move(a.denormalize_path(&p))));
            }
            return Ok(FrameStatus::Acting(Decision::Stay));
        }
    }

    // No usable r_max: the selected robot descends to the center to rebuild
    // the frame from scratch.
    if a.me == rs {
        let p = Path::straight(rs_pos, Point::ORIGIN);
        return Ok(FrameStatus::Acting(Decision::Move(a.denormalize_path(&p))));
    }
    Ok(FrameStatus::Acting(Decision::Stay))
}

/// The angular clearance `min(θ_F', θ_safe)`: no off-ray target sits within
/// this angle of the zero ray.
fn theta_clearance(plan: &TargetPlan, tol: &apf_geometry::Tol) -> f64 {
    let mut clearance = plan.theta_f;
    for (i, t) in plan.targets.iter().enumerate() {
        if i == plan.fmax || tol.is_zero(t.radius) {
            continue;
        }
        // Distance of the target's ray to the zero ray (in [0, π]).
        let d = apf_geometry::angle::angle_dist(t.angle, 0.0);
        if d > tol.angle_eps && d < clearance {
            clearance = d;
        }
    }
    clearance
}

/// The selected robot re-emerges from the center at a controlled tiny angle
/// next to the closest robot, creating a unique valid `r_max`.
fn emerge_from_center(a: &Analysis, others: &[usize], clearance: f64) -> Decision {
    let tol = &a.tol;
    // r*: the closest robot (ties broken deterministically by angle so the
    // destination is well defined; only r_s acts here, so no cross-robot
    // agreement is needed).
    let rstar = *others
        .iter()
        .min_by(|&&x, &&y| {
            a.radius(x).total_cmp(&a.radius(y)).then(a.polar(x).angle.total_cmp(&a.polar(y).angle))
        })
        // apf-lint: allow(panic-policy) — n ≥ 2 is a formPattern precondition, so others ≠ ∅
        .expect("others is non-empty");
    let rstar_polar = a.polar(rstar);
    // Angular gap from r* to its nearest other robot.
    let mut gap = std::f64::consts::PI;
    for &i in others {
        if i == rstar {
            continue;
        }
        let d = signed_angle_diff(rstar_polar.angle, a.polar(i).angle).abs();
        if d > tol.angle_eps && d < gap {
            gap = d;
        }
    }
    let dtheta = (clearance.min(gap) / (2.0 * WEDGE_FACTOR)).max(tol.angle_eps * 16.0);
    let dist = SELECTED_RADIUS_FACTOR * a.l_f.min(rstar_polar.radius);
    let dest_angle = rstar_polar.angle - dtheta;
    let dest = Point::new(dist * dest_angle.cos(), dist * dest_angle.sin());
    let p = Path::straight(a.my_pos(), dest);
    Decision::Move(a.denormalize_path(&p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_geometry::Tol;
    use apf_sim::Snapshot;
    use std::f64::consts::TAU;

    fn analysis(points: &[Point], me: usize, pattern: Vec<Point>) -> Analysis {
        let off = points[me];
        let local: Vec<Point> = points.iter().map(|&p| (p - off).to_point()).collect();
        let snap = Snapshot::new(local, pattern, false, Tol::default());
        Analysis::new(&snap).unwrap()
    }

    fn ring(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = TAU * i as f64 / n as f64 + phase;
                Point::new(r * t.cos(), r * t.sin())
            })
            .collect()
    }

    /// A configuration with a proper selected robot and a valid r_max next
    /// to it. The r_max radius is calibrated against the plan's f_max radius
    /// so Phase-1 condition (iii) holds.
    fn good_frame_config() -> (Vec<Point>, usize, usize) {
        // Probe the plan with a throwaway configuration to learn |f_max|.
        let probe = ring(8, 1.0, 0.0);
        let a = analysis(&probe, 0, pattern8());
        let plan = TargetPlan::new(&a, 0).unwrap();
        let rmax_r = plan.fmax_radius * 0.9;

        let mut pts = ring(6, 1.0, 0.4);
        // r_max close to the center at angle 0.
        pts.push(Point::new(rmax_r, 0.0));
        // r_s just clockwise of r_max, very close to the center.
        let delta = 0.002f64;
        let rs_r = rmax_r / 3.0;
        pts.push(Point::new(rs_r * (-delta).cos(), rs_r * (-delta).sin()));
        (pts, 7, 6) // (points, rs index, rmax index)
    }

    fn pattern8() -> Vec<Point> {
        // 6 on the unit circle, one inner anchor, one near-center point
        // (the f_s the selected robot will eventually take).
        let mut f = ring(6, 1.0, 0.2);
        f.push(Point::new(0.45, 0.3));
        f.push(Point::new(0.1, -0.15));
        f
    }

    #[test]
    fn frame_is_ready_on_good_config() {
        let (pts, rs, rmax) = good_frame_config();
        let a = analysis(&pts, 0, pattern8());
        assert_eq!(a.selected(), Some(rs));
        match ensure_frame(&a, rs, &TargetPlan::new(&a, rs).unwrap()).unwrap() {
            FrameStatus::Ready(zf) => {
                assert_eq!(zf.rmax, rmax);
                // r_s's Z-angle is in the upper half (orientation maximizes it).
                assert!(zf.rs_angle >= std::f64::consts::PI);
                // r_max itself has Z-angle 0.
                let za = zf.angle_of(a.config.point(rmax));
                assert!(za < 1e-9 || TAU - za < 1e-9);
            }
            FrameStatus::Acting(_) => panic!("frame should be ready"),
        }
    }

    #[test]
    fn z_frame_roundtrip() {
        let (pts, rs, _) = good_frame_config();
        let a = analysis(&pts, 0, pattern8());
        let plan = TargetPlan::new(&a, rs).unwrap();
        let FrameStatus::Ready(zf) = ensure_frame(&a, rs, &plan).unwrap() else {
            panic!("frame expected")
        };
        for i in 0..a.n() {
            let p = a.config.point(i);
            let r = p.dist(Point::ORIGIN);
            let z = zf.angle_of(p);
            let back = zf.to_point(r, z);
            assert!(back.approx_eq(p, &Tol::new(1e-9)), "robot {i}");
        }
    }

    #[test]
    fn rs_descends_when_no_rmax() {
        // Selected robot with the radially-minimal robot NOT angularly
        // closest: phase 1 sends r_s toward the center.
        let mut pts = ring(6, 1.0, 0.0);
        pts.push(Point::new(-0.3, 0.0)); // radially minimal, far from rs angularly
        pts.push(Point::new(0.05, 0.04)); // rs, closest to other robots' rays
        let rs = 7;
        let a = analysis(&pts, rs, pattern8());
        assert_eq!(a.selected(), Some(rs));
        let plan = TargetPlan::new(&a, rs).unwrap();
        match ensure_frame(&a, rs, &plan).unwrap() {
            FrameStatus::Acting(Decision::Move(p)) => {
                // Destination is the center (local frame: center of C(P)).
                let dest = p.destination();
                let c_local = a.denorm_point(Point::ORIGIN);
                assert!(dest.approx_eq(c_local, &Tol::new(1e-6)));
            }
            other => panic!("expected rs to descend, got {other:?}"),
        }
    }

    #[test]
    fn rs_emerges_from_center() {
        let mut pts = ring(6, 1.0, 0.4);
        pts.push(Point::new(0.3, 0.0)); // closest robot r*
        pts.push(Point::ORIGIN); // rs at the center
        let rs = 7;
        let a = analysis(&pts, rs, pattern8());
        let plan = TargetPlan::new(&a, rs).unwrap();
        match ensure_frame(&a, rs, &plan).unwrap() {
            FrameStatus::Acting(Decision::Move(p)) => {
                let dest = p.destination();
                // Destination is near r*'s ray, strictly inside, non-zero.
                let c_local = a.denorm_point(Point::ORIGIN);
                let d = dest.dist(c_local);
                assert!(d > 1e-4 && d < 0.3);
            }
            other => panic!("expected rs to emerge, got {other:?}"),
        }
    }

    #[test]
    fn non_actors_stay_during_phase1() {
        let mut pts = ring(6, 1.0, 0.0);
        pts.push(Point::new(-0.3, 0.0));
        pts.push(Point::new(0.05, 0.04));
        let rs = 7;
        // Observer = a ring robot: must Stay while rs repairs the frame.
        let a = analysis(&pts, 2, pattern8());
        let plan = TargetPlan::new(&a, rs).unwrap();
        match ensure_frame(&a, rs, &plan).unwrap() {
            FrameStatus::Acting(d) => assert_eq!(d, Decision::Stay),
            FrameStatus::Ready(_) => panic!("frame should not be ready"),
        }
    }

    #[test]
    fn rmax_descends_when_condition_iii_fails() {
        // Valid wedge but r_max farther out than |f_max|: r_max must descend.
        let mut pts = ring(6, 1.0, 0.4);
        pts.push(Point::new(0.9, -0.003)); // candidate r_max at radius 0.9
        pts.push(Point::new(0.04, -0.0004)); // rs in the wedge just below
        let rs = 7;
        let rmax = 6;
        let a = analysis(&pts, rmax, pattern8());
        assert_eq!(a.selected(), Some(rs));
        let plan = TargetPlan::new(&a, rs).unwrap();
        assert!(plan.fmax_radius < 0.9, "fmax radius {}", plan.fmax_radius);
        match ensure_frame(&a, rs, &plan).unwrap() {
            FrameStatus::Acting(Decision::Move(p)) => {
                let c_local = a.denorm_point(Point::ORIGIN);
                let end_r = p.destination().dist(c_local);
                assert!((end_r - plan.fmax_radius).abs() < 1e-6);
            }
            other => panic!("expected rmax descent, got {other:?}"),
        }
    }
}
