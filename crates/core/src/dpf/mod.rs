//! `ψ_DPF` — deterministic pattern formation without chirality (Section 4).
//!
//! Precondition: the configuration contains a *selected* robot `r_s` (the
//! output of `ψ_RSB`), or the pattern is one robot move away from complete.
//! Because a selected robot exists, the symmetricity is 1 and every robot
//! can derive the same global, *oriented* coordinate system `Z` — without
//! any chirality assumption — as follows (Phase 1):
//!
//! * center: `c(P)` (= the origin of normalized coordinates);
//! * reference direction: the half-line to `r_max`, the unique robot that is
//!   both radially minimal in `P − {r_s}` and angularly closest to `r_s`
//!   (Phase 1 *creates* this configuration when it does not hold);
//! * orientation: the rotational direction that maximizes `r_s`'s
//!   coordinates — a convention both mirror images agree on.
//!
//! Phases 2 and 3 then populate each target circle with the right number of
//! robots and rotate them into the exact pattern positions, all while
//! preserving `C(P)` and the robots' `Z`-order (no two robots ever swap).

mod phase1;
mod phase2;
mod phase3;

use crate::analysis::Analysis;
use apf_geometry::angle::normalize_angle;
use apf_geometry::symmetry::ViewAnalysis;
use apf_geometry::{Configuration, Point, PolarPoint, Tol};
use apf_sim::{ComputeError, Decision, PhaseKind};

pub use phase1::ZFrame;

/// Runs one activation of `ψ_DPF` for the observer, given the selected
/// robot.
///
/// The returned [`PhaseKind`] names the paper phase that produced the
/// decision: [`PhaseKind::DpfFrame`] while Phase 1 establishes `Z`,
/// [`PhaseKind::DpfPopulate`] for Phase 2 and its pre-phases,
/// [`PhaseKind::DpfRotate`] for Phase 3, and [`PhaseKind::DpfIdle`] when no
/// phase has work for this robot this cycle.
///
/// # Errors
///
/// Returns [`ComputeError`] on configurations that violate the phase
/// invariants (which would indicate a bug upstream, not a legal input).
pub fn act(a: &Analysis, rs: usize) -> Result<(Decision, PhaseKind), ComputeError> {
    let plan = TargetPlan::new(a, rs)?;
    let dbg = std::env::var_os("APF_DEBUG").is_some();

    // Phase 1: establish the global coordinate system.
    match phase1::ensure_frame(a, rs, &plan)? {
        phase1::FrameStatus::Acting(decision) => {
            if dbg {
                eprintln!("[dpf me={} rs={rs}] phase1 acting: {decision:?}", a.me);
            }
            Ok((decision, PhaseKind::DpfFrame))
        }
        phase1::FrameStatus::Ready(zf) => {
            // Pre-phase: no robot other than r_max may sit on the zero ray.
            if let Some(d) = phase2::clear_zero_ray(a, rs, &zf, &plan) {
                if dbg {
                    eprintln!("[dpf me={} rs={rs}] clear_zero_ray: {d:?}", a.me);
                }
                return Ok((d, PhaseKind::DpfPopulate));
            }
            // Special pre-phase when only two pattern points lie on C(F).
            if let Some(d) = phase2::fix_enclosing_circle(a, rs, &zf, &plan)? {
                if dbg {
                    eprintln!("[dpf me={} rs={rs}] fix_enclosing_circle: {d:?}", a.me);
                }
                return Ok((d, PhaseKind::DpfPopulate));
            }
            // Phase 2: populate the circles outside-in.
            if let Some(d) = phase2::populate_circles(a, rs, &zf, &plan)? {
                if dbg {
                    eprintln!("[dpf me={} rs={rs} rmax={}] populate: {d:?}", a.me, zf.rmax);
                }
                return Ok((d, PhaseKind::DpfPopulate));
            }
            // Phase 3: rotate robots to their final positions.
            if let Some(d) = phase3::rotate_to_targets(a, rs, &zf, &plan)? {
                if dbg {
                    eprintln!("[dpf me={} rs={rs} rmax={}] rotate: {d:?}", a.me, zf.rmax);
                }
                return Ok((d, PhaseKind::DpfRotate));
            }
            Ok((Decision::Stay, PhaseKind::DpfIdle))
        }
    }
}

/// The pattern decomposition used by every phase: `f_s` (the selected
/// robot's final destination), `F' = F − {f_s}`, `f_max` (the view-maximal
/// point of `F'`), the target circles, and `θ_F'`.
#[derive(Debug)]
pub struct TargetPlan {
    /// Index (into the normalized pattern) of `f_s`.
    pub fs: usize,
    /// `F'` as points (normalized coordinates, pattern frame).
    pub f_prime: Vec<Point>,
    /// Index into [`Self::f_prime`] of `f_max`.
    pub fmax: usize,
    /// `|f_max|`.
    pub fmax_radius: f64,
    /// `θ_F'`: angular clearance around `f_max` (Phase 1 condition iv).
    pub theta_f: f64,
    /// Target circle radii, strictly decreasing; `circles[0]` is `C(F)`.
    pub circles: Vec<f64>,
    /// Number of `F'` points on each circle.
    pub counts: Vec<usize>,
    /// `F'` in polar form relative to `f_max` (angle measured in `F'`'s
    /// view-maximizing orientation): the Z-coordinates of every target.
    pub targets: Vec<PolarPoint>,
}

impl TargetPlan {
    /// Computes the plan from the normalized pattern.
    ///
    /// # Errors
    ///
    /// Fails when the pattern has no view-maximal non-holding point (needs
    /// `|F| ≥ 4`) — rejected at analysis time for valid inputs.
    pub fn new(a: &Analysis, _rs: usize) -> Result<Self, ComputeError> {
        let tol = &a.tol;
        let fs_candidates = a.pattern_max_view_nonholders();
        let Some(&fs) = fs_candidates.first() else {
            return Err(ComputeError::new("pattern has no max-view non-holding point"));
        };
        let f_prime: Vec<Point> =
            a.pattern.iter().enumerate().filter(|&(i, _)| i != fs).map(|(_, &p)| p).collect();

        // f_max anchors the zero ray of Z and is the slot reserved for
        // r_max. The paper picks a view-maximal point of F'; we pick an
        // *innermost* point of F' (ties broken by maximal view, then either
        // mirror partner — their anchored target lists coincide). This keeps
        // r_max radially minimal (Phase-1 condition i) all the way to its
        // final slot, which the view-maximal choice does not guarantee (a
        // view-maximal f_max on C(F) would force the frame anchor onto the
        // enclosing circle mid-formation). See DESIGN.md.
        let fp_cfg = Configuration::new(f_prime.clone());
        let va = ViewAnalysis::compute(&fp_cfg, Point::ORIGIN, tol);
        let min_radius = f_prime
            .iter()
            .map(|p| p.dist(Point::ORIGIN))
            .filter(|&r| !tol.is_zero(r))
            .fold(f64::INFINITY, f64::min);
        // Among the innermost-radius candidates, prefer a location that is
        // NOT a multiplicity point (a singleton anchor keeps the zero ray
        // free of stacked targets), then break ties by maximal view.
        let multiplicity_of =
            |i: usize| f_prime.iter().filter(|p| p.approx_eq(f_prime[i], tol)).count();
        let fmax = (0..f_prime.len())
            .filter(|&i| tol.eq(f_prime[i].dist(Point::ORIGIN), min_radius))
            .max_by(|&x, &y| {
                multiplicity_of(y)
                    .cmp(&multiplicity_of(x)) // fewer duplicates wins
                    .then(va.view(x).cmp(va.view(y)))
            })
            // apf-lint: allow(panic-policy) — caller checked F' non-empty (plan precondition)
            .expect("F' is non-empty");
        let fmax_polar = PolarPoint::from_cartesian(f_prime[fmax], Point::ORIGIN);
        if tol.is_zero(fmax_polar.radius) {
            return Err(ComputeError::new("f_max at the pattern center is unsupported"));
        }

        // θ_F' = min(π, angles between f_max and other same-radius
        // max-view points). Points on f_max's own ray (its multiplicity
        // duplicates) do not constrain the wedge — they sit at angular
        // distance zero by construction, not by accident.
        let mut theta_f = std::f64::consts::PI;
        for (i, &fp) in f_prime.iter().enumerate() {
            if i == fmax || va.view(i) != va.view(fmax) {
                continue;
            }
            let p = PolarPoint::from_cartesian(fp, Point::ORIGIN);
            if !tol.eq(p.radius, fmax_polar.radius) {
                continue;
            }
            let ang = apf_geometry::angle::angle_dist(p.angle, fmax_polar.angle);
            if ang > tol.angle_eps && ang < theta_f {
                theta_f = ang;
            }
        }

        // Orientation of F': the one maximizing f_max's view; mirror images
        // of the pattern are both acceptable outcomes (the similarity
        // relation ≈ includes reflections), so either flag works when both
        // orientations tie.
        let orient = if va.robots()[fmax].ccw_max { 1.0 } else { -1.0 };
        let targets: Vec<PolarPoint> = f_prime
            .iter()
            .map(|&p| {
                let pp = PolarPoint::from_cartesian(p, Point::ORIGIN);
                if tol.is_zero(pp.radius) {
                    PolarPoint { radius: 0.0, angle: 0.0 }
                } else {
                    let mut angle = normalize_angle(orient * (pp.angle - fmax_polar.angle));
                    // Canonicalize zero-ray targets: a point collinear with
                    // f_max computes as 0 or 2π−ε depending on the robot's
                    // (mirrored/rotated) pattern copy, and the sort order of
                    // the target list must not differ between robots.
                    if std::f64::consts::TAU - angle <= 1e-9 {
                        angle = 0.0;
                    }
                    PolarPoint { radius: pp.radius, angle }
                }
            })
            .collect();

        // Distinct circle radii, strictly decreasing.
        let mut radii: Vec<f64> = targets.iter().map(|t| t.radius).collect();
        radii.sort_by(|x, y| y.total_cmp(x));
        let mut circles: Vec<f64> = Vec::new();
        for r in radii {
            if tol.is_zero(r) {
                continue; // center targets are handled by multiplicity mode
            }
            if circles.last().is_none_or(|&last| tol.lt(r, last)) {
                circles.push(r);
            }
        }
        let counts: Vec<usize> = circles
            .iter()
            .map(|&c| targets.iter().filter(|t| tol.eq(t.radius, c)).count())
            .collect();

        Ok(TargetPlan {
            fs,
            f_prime,
            fmax,
            fmax_radius: fmax_polar.radius,
            theta_f,
            circles,
            counts,
            targets,
        })
    }

    /// Index of the circle whose radius matches `r`, if any.
    pub fn circle_of_radius(&self, r: f64, tol: &Tol) -> Option<usize> {
        self.circles.iter().position(|&c| tol.eq(c, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_sim::Snapshot;
    use std::f64::consts::TAU;

    fn ring(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = TAU * i as f64 / n as f64 + phase;
                Point::new(r * t.cos(), r * t.sin())
            })
            .collect()
    }

    fn analysis(points: &[Point], me: usize, pattern: Vec<Point>) -> Analysis {
        let off = points[me];
        let local: Vec<Point> = points.iter().map(|&p| (p - off).to_point()).collect();
        let snap = Snapshot::new(local, pattern, false, Tol::default());
        Analysis::new(&snap).unwrap()
    }

    #[test]
    fn target_plan_counts_circles() {
        // Pattern: 4 points on the unit circle, 3 on an inner circle.
        let mut pattern = ring(4, 1.0, 0.1);
        pattern.extend(ring(3, 0.5, 0.7));
        let robots = ring(7, 1.0, 0.0);
        let a = analysis(&robots, 0, pattern);
        let plan = TargetPlan::new(&a, 0).unwrap();
        // F' = F − {fs}: fs is a non-holder, so it comes from a circle that
        // keeps at least 2 points... total targets = 6.
        assert_eq!(plan.f_prime.len(), 6);
        assert_eq!(plan.circles.len(), 2);
        assert!(plan.circles[0] > plan.circles[1]);
        assert_eq!(plan.counts.iter().sum::<usize>(), 6);
    }

    #[test]
    fn targets_are_fmax_anchored() {
        let mut pattern = ring(5, 1.0, 0.3);
        pattern.extend(ring(3, 0.4, 0.9));
        let robots = ring(8, 1.0, 0.0);
        let a = analysis(&robots, 0, pattern);
        let plan = TargetPlan::new(&a, 0).unwrap();
        // f_max itself maps to angle 0.
        let t = &plan.targets[plan.fmax];
        assert!(t.angle.abs() < 1e-9 || (TAU - t.angle) < 1e-9);
        assert!((t.radius - plan.fmax_radius).abs() < 1e-9);
        assert!(plan.theta_f > 0.0 && plan.theta_f <= std::f64::consts::PI);
    }

    #[test]
    fn plan_is_mirror_invariant_in_shape() {
        // Mirroring the pattern must give the same multiset of target polar
        // coordinates (the plan is chirality-free).
        let mut pattern = ring(5, 1.0, 0.3);
        pattern.push(Point::new(0.4, 0.2));
        pattern.push(Point::new(-0.3, 0.6));
        let mirrored: Vec<Point> = pattern.iter().map(|p| Point::new(p.x, -p.y)).collect();
        let robots = ring(7, 1.0, 0.0);
        let a1 = analysis(&robots, 0, pattern);
        let a2 = analysis(&robots, 0, mirrored);
        let p1 = TargetPlan::new(&a1, 0).unwrap();
        let p2 = TargetPlan::new(&a2, 0).unwrap();
        let mut k1: Vec<(i64, i64)> = p1
            .targets
            .iter()
            .map(|t| ((t.radius * 1e6).round() as i64, (t.angle * 1e6).round() as i64))
            .collect();
        let mut k2: Vec<(i64, i64)> = p2
            .targets
            .iter()
            .map(|t| ((t.radius * 1e6).round() as i64, (t.angle * 1e6).round() as i64))
            .collect();
        k1.sort_unstable();
        k2.sort_unstable();
        assert_eq!(k1, k2);
    }
}
