//! Phase 2: populate every target circle with exactly the right number of
//! robots, outside-in, preserving `C(P)`, the `Z`-order, and the frame.
//!
//! Procedures (evaluated as "first failing condition acts"):
//!
//! * `clear_zero_ray` — pre-phase: no robot other than `r_max` may sit on
//!   the `Z` zero ray;
//! * `fix_enclosing_circle` — special pre-phase when exactly two pattern
//!   points lie on `C(F)`: those two positions must be taken (by the two
//!   extremal robots of `C(P)`) before anyone else may leave `C(P)`,
//!   because two robots cannot hold the enclosing circle by committee;
//! * `populate_circles` — for each circle `C_i` (outermost first):
//!   `cleanExterior(i)` drops strays between `C_{i−1}` and `C_i` onto
//!   `C_i`, `locateEnoughRobots(i)` raises interior robots onto `C_i`
//!   until `m_i` sit there, and `removeRobotsInExcess(i)` drops the excess
//!   below (on `C_1` only after the `m_1` greatest robots form a regular
//!   `m_1`-gon that holds `C(P)` by itself).
//!
//! `r_max` is special: it anchors the frame, so it only ever moves
//! *radially* (its `Z`-angle 0 is preserved), and it is reserved for
//! `f_max`'s circle.

use crate::analysis::Analysis;
use crate::dpf::phase1::ZFrame;
use crate::dpf::TargetPlan;
use apf_geometry::{path, Point};
use apf_sim::{ComputeError, Decision};
use std::f64::consts::{PI, TAU};

/// Pre-phase: robots (other than `r_max`) sitting on the zero ray rotate off
/// it. Robots standing exactly at a *zero-ray target position* (a pattern
/// point collinear with `f_max` — typically a multiplicity duplicate of
/// `f_max`) are exempt: evicting them would undo legitimate placements and
/// livelock the formation. Returns `Some` while any offender exists.
pub fn clear_zero_ray(a: &Analysis, rs: usize, zf: &ZFrame, plan: &TargetPlan) -> Option<Decision> {
    let tol = &a.tol;
    let at_zero_ray_target = |i: usize| {
        let r = a.radius(i);
        plan.targets.iter().any(|t| {
            (t.angle <= tol.angle_eps || TAU - t.angle <= tol.angle_eps) && tol.eq(t.radius, r)
        })
    };
    let offenders: Vec<usize> = (0..a.n())
        .filter(|&i| i != rs && i != zf.rmax)
        .filter(|&i| {
            let z = zf.angle_of(a.config.point(i));
            z <= tol.angle_eps || TAU - z <= tol.angle_eps
        })
        .filter(|&i| !at_zero_ray_target(i))
        .collect();
    if offenders.is_empty() {
        return None;
    }
    if !offenders.contains(&a.me) {
        return Some(Decision::Stay);
    }
    // Rotate off the ray by half the gap to the next robot on my circle (or
    // a small default), in the direct orientation.
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(Point::ORIGIN);
    let mut dz = PI / 16.0;
    for i in 0..a.n() {
        if i == a.me || i == rs {
            continue;
        }
        if tol.eq(a.radius(i), my_r) {
            let z = zf.angle_of(a.config.point(i));
            if z > tol.angle_eps && z / 2.0 < dz {
                dz = z / 2.0;
            }
        }
    }
    let p = zf.rotate(my_pos, dz);
    Some(Decision::Move(a.denormalize_path(&p)))
}

/// Special pre-phase for `|C(F) ∩ F'| = 2`. Returns `Ok(Some)` while the
/// two `C(P)` positions are not finalized, `Ok(None)` when not applicable or
/// complete.
pub fn fix_enclosing_circle(
    a: &Analysis,
    rs: usize,
    zf: &ZFrame,
    plan: &TargetPlan,
) -> Result<Option<Decision>, ComputeError> {
    if plan.counts.first() != Some(&2) {
        return Ok(None);
    }
    let tol = &a.tol;
    let c1 = plan.circles[0];
    let mut t_pair: Vec<f64> =
        plan.targets.iter().filter(|t| tol.eq(t.radius, c1)).map(|t| t.angle).collect();
    t_pair.sort_by(f64::total_cmp);
    debug_assert_eq!(t_pair.len(), 2);
    let (t_lo, t_hi) = (t_pair[0], t_pair[1]);

    let mut on_c1: Vec<usize> =
        prime_robots(a, rs).into_iter().filter(|&i| tol.eq(a.radius(i), c1)).collect();
    on_c1.sort_by(|&x, &y| {
        zf.angle_of(a.config.point(x)).total_cmp(&zf.angle_of(a.config.point(y)))
    });

    // Satisfied: exactly two robots, at the two target angles.
    if on_c1.len() == 2 {
        let a_lo = zf.angle_of(a.config.point(on_c1[0]));
        let a_hi = zf.angle_of(a.config.point(on_c1[1]));
        if ang_close(a_lo, t_lo, tol) && ang_close(a_hi, t_hi, tol) {
            return Ok(None);
        }
        // Exactly two robots hold C(P): neither may move yet. Raise the
        // greatest interior robot to C(P) first.
        return Ok(Some(raise_to_circle(a, rs, zf, c1, usize::MAX, None)));
    }
    if on_c1.len() < 2 {
        return Err(ComputeError::new("C(P) lost its supporting robots"));
    }

    // Three or more robots on C(P): the extremal two head for the targets,
    // the middle ones spread out between them.
    let r_lo = on_c1[0];
    // apf-lint: allow(panic-policy) — this branch is only reached with ≥ 3 robots on C(P)
    let r_hi = *on_c1.last().expect("non-empty");
    let a_lo = zf.angle_of(a.config.point(r_lo));
    let a_hi = zf.angle_of(a.config.point(r_hi));
    if ang_close(a_lo, t_lo, tol) && ang_close(a_hi, t_hi, tol) {
        // The two anchors are in place: the second smallest robot steps
        // inward (the anchors are diametral, so C(P) survives).
        let mover = on_c1[1];
        if a.me != mover {
            return Ok(Some(Decision::Stay));
        }
        return Ok(Some(nudge_inward(a, rs, mover, plan, None)));
    }
    // Assign destinations: extremes to the targets; middles map their
    // *current* angle proportionally into the target span. Proportional
    // mapping is injective in the robot's own position, so no two robots —
    // across any pair of (possibly stale) assignment epochs — ever share a
    // destination, which count-dependent "even spacing" cannot guarantee.
    let k = on_c1.len();
    let span = (a_hi - a_lo).max(1e-9);
    let dest: Vec<f64> = (0..k)
        .map(|idx| {
            if idx == 0 {
                t_lo
            } else if idx == k - 1 {
                t_hi
            } else {
                let ang = zf.angle_of(a.config.point(on_c1[idx]));
                t_lo + (t_hi - t_lo) * ((ang - a_lo) / span).clamp(0.01, 0.99)
            }
        })
        .collect();
    let Some(my_idx) = on_c1.iter().position(|&i| i == a.me) else {
        return Ok(Some(Decision::Stay));
    };
    if std::env::var_os("APF_DEBUG").is_some() {
        let angs: Vec<(usize, f64)> =
            on_c1.iter().map(|&i| (i, zf.angle_of(a.config.point(i)))).collect();
        eprintln!(
            "  [fix me={} on_c1 angles={angs:?} dests={dest:?} t=({t_lo:.4},{t_hi:.4})]",
            a.me
        );
    }
    Ok(Some(move_on_circle(a, zf, rs, dest[my_idx], &on_c1, true, false)))
}

/// The main outside-in circle population loop. Returns `Ok(Some)` while any
/// circle is incomplete, `Ok(None)` when every circle holds exactly its
/// target count.
pub fn populate_circles(
    a: &Analysis,
    rs: usize,
    zf: &ZFrame,
    plan: &TargetPlan,
) -> Result<Option<Decision>, ComputeError> {
    let tol = &a.tol;
    let dbg = std::env::var_os("APF_DEBUG").is_some();
    let fmax_circle = plan
        .circle_of_radius(plan.fmax_radius, tol)
        .ok_or_else(|| ComputeError::new("f_max not on any target circle"))?;

    for i in 0..plan.circles.len() {
        let ci = plan.circles[i];
        // --- cleanExterior(i): strays between C_{i-1} and C_i ---
        if i > 0 {
            let hi = plan.circles[i - 1];
            let band: Vec<usize> = prime_robots(a, rs)
                .into_iter()
                .filter(|&r| r != zf.rmax)
                .filter(|&r| {
                    let rr = a.radius(r);
                    tol.lt(ci, rr) && tol.lt(rr, hi)
                })
                .collect();
            if let Some(&r) = band.iter().min_by(|&&x, &&y| cmp_z(a, zf, x, y)) {
                if a.me != r {
                    return Ok(Some(Decision::Stay));
                }
                return Ok(Some(drop_to_circle(a, rs, zf, r, ci)));
            }
        }

        let on_ci: Vec<usize> =
            prime_robots(a, rs).into_iter().filter(|&r| tol.eq(a.radius(r), ci)).collect();
        if dbg {
            eprintln!("  [populate i={i} ci={ci:.9}] on_ci={on_ci:?} count={}", plan.counts[i]);
        }

        // --- locateEnoughRobots(i) ---
        if on_ci.len() < plan.counts[i] {
            // r_max is reserved for f_max's circle and climbs radially.
            if i == fmax_circle && !on_ci.contains(&zf.rmax) {
                if a.me != zf.rmax {
                    return Ok(Some(Decision::Stay));
                }
                let p = path::radial_to(Point::ORIGIN, a.my_pos(), ci);
                return Ok(Some(Decision::Move(a.denormalize_path(&p))));
            }
            return Ok(Some(raise_to_circle(a, rs, zf, ci, zf.rmax, Some(&on_ci))));
        }

        // --- removeRobotsInExcess(i) ---
        if on_ci.len() > plan.counts[i] {
            if i == 0 {
                return Ok(Some(excess_on_c1(a, rs, zf, plan, &on_ci)));
            }
            let mover = on_ci
                .iter()
                .copied()
                .filter(|&r| r != zf.rmax)
                .min_by(|&x, &y| cmp_z(a, zf, x, y))
                .ok_or_else(|| ComputeError::new("excess circle contains only r_max"))?;
            if a.me != mover {
                return Ok(Some(Decision::Stay));
            }
            return Ok(Some(nudge_inward(a, rs, mover, plan, Some(i))));
        }
    }
    Ok(None)
}

/// All robots except the selected one.
fn prime_robots(a: &Analysis, rs: usize) -> Vec<usize> {
    (0..a.n()).filter(|&i| i != rs).collect()
}

/// Tolerant `Z`-order comparison of two robots: radius first (radii within
/// tolerance count as equal — symmetric workloads place robots at *exactly*
/// equal radii, and raw `f64` ordering would let per-frame normalization
/// noise make robots disagree on who acts), then `Z`-angle.
fn cmp_z(a: &Analysis, zf: &ZFrame, x: usize, y: usize) -> std::cmp::Ordering {
    a.tol
        .cmp(a.radius(x), a.radius(y))
        .then_with(|| zf.angle_of(a.config.point(x)).total_cmp(&zf.angle_of(a.config.point(y))))
}

fn ang_close(x: f64, y: f64, tol: &apf_geometry::Tol) -> bool {
    apf_geometry::angle::angle_dist(x, y) <= tol.angle_eps.max(1e-6)
}

/// `cleanExterior`'s action for the chosen stray robot `r` above circle
/// `ci`: isolate on its own circle, swing past the occupied arc, then drop
/// radially onto `ci` (one leg per activation).
fn drop_to_circle(a: &Analysis, rs: usize, zf: &ZFrame, r: usize, ci: f64) -> Decision {
    debug_assert_eq!(a.me, r);
    let tol = &a.tol;
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(Point::ORIGIN);
    // Shared circle? Step down between my circle and the next thing below.
    let shared = (0..a.n()).any(|i| i != r && i != rs && tol.eq(a.radius(i), my_r));
    if shared {
        let floor = (0..a.n())
            .filter(|&i| i != r && i != rs)
            .map(|i| a.radius(i))
            .filter(|&x| tol.lt(x, my_r) && tol.le(ci, x))
            .fold(ci, f64::max);
        let target = (my_r + floor) / 2.0;
        let p = path::radial_to(Point::ORIGIN, my_pos, target);
        return Decision::Move(a.denormalize_path(&p));
    }
    let on_ci: Vec<usize> = (0..a.n()).filter(|&i| i != rs && tol.eq(a.radius(i), ci)).collect();
    let a_max = on_ci.iter().map(|&i| zf.angle_of(a.config.point(i))).fold(0.0_f64, f64::max);
    let upper = zf.upper_bound();
    let my_z = zf.angle_of(my_pos);
    if my_z > a_max + tol.angle_eps && my_z < upper {
        let p = path::radial_to(Point::ORIGIN, my_pos, ci);
        return Decision::Move(a.denormalize_path(&p));
    }
    // Swing to the parking angle past everyone on the target circle.
    let target_angle = (a_max + upper) / 2.0;
    rotate_toward(a, zf, my_pos, my_z, target_angle, false)
}

/// `locateEnoughRobots`'s action: the greatest interior robot (excluding
/// `skip`, normally `r_max`) rises onto circle `ci` below everyone already
/// there.
fn raise_to_circle(
    a: &Analysis,
    rs: usize,
    zf: &ZFrame,
    ci: f64,
    skip: usize,
    on_ci: Option<&[usize]>,
) -> Decision {
    let tol = &a.tol;
    let interior: Vec<usize> =
        prime_robots(a, rs).into_iter().filter(|&r| r != skip && tol.lt(a.radius(r), ci)).collect();
    let Some(&r) = interior.iter().max_by(|&&x, &&y| cmp_z(a, zf, x, y)) else {
        return Decision::Stay;
    };
    if a.me != r {
        return Decision::Stay;
    }
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(Point::ORIGIN);
    let shared = (0..a.n()).any(|i| i != r && i != rs && tol.eq(a.radius(i), my_r));
    if shared {
        // Step outward between my circle and the next thing above.
        let ceil = (0..a.n())
            .filter(|&i| i != r && i != rs)
            .map(|i| a.radius(i))
            .filter(|&x| tol.lt(my_r, x) && tol.le(x, ci))
            .fold(ci, f64::min);
        let target = (my_r + ceil) / 2.0;
        let p = path::radial_to(Point::ORIGIN, my_pos, target);
        return Decision::Move(a.denormalize_path(&p));
    }
    let on_ci_owned;
    let on_ci = match on_ci {
        Some(v) => v,
        None => {
            on_ci_owned =
                (0..a.n()).filter(|&i| i != rs && tol.eq(a.radius(i), ci)).collect::<Vec<usize>>();
            &on_ci_owned
        }
    };
    let a_min =
        on_ci.iter().map(|&i| zf.angle_of(a.config.point(i))).fold(zf.upper_bound(), f64::min);
    let my_z = zf.angle_of(my_pos);
    if my_z + tol.angle_eps < a_min && my_z > tol.angle_eps {
        let p = path::radial_to(Point::ORIGIN, my_pos, ci);
        return Decision::Move(a.denormalize_path(&p));
    }
    // Swing to half the smallest occupied angle (staying off the zero ray).
    let target_angle = (a_min / 2.0).max(tol.angle_eps * 32.0);
    rotate_toward(a, zf, my_pos, my_z, target_angle, false)
}

/// `removeRobotsInExcess` off `C_1`: the chosen robot steps a little inward,
/// strictly between its circle and the next constraint below.
fn nudge_inward(
    a: &Analysis,
    rs: usize,
    mover: usize,
    plan: &TargetPlan,
    circle_idx: Option<usize>,
) -> Decision {
    debug_assert_eq!(a.me, mover);
    let tol = &a.tol;
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(Point::ORIGIN);
    let next_circle = circle_idx.and_then(|i| plan.circles.get(i + 1)).copied().unwrap_or(0.0);
    let floor = (0..a.n())
        .filter(|&i| i != mover && i != rs)
        .map(|i| a.radius(i))
        .filter(|&x| tol.lt(x, my_r))
        .fold(next_circle, f64::max);
    let target = (my_r + floor) / 2.0;
    let p = path::radial_to(Point::ORIGIN, my_pos, target);
    Decision::Move(a.denormalize_path(&p))
}

/// Excess robots on `C_1 = C(P)`: first the `m_1` greatest robots form the
/// regular `m_1`-gon mirror-symmetric about the zero ray (so they hold
/// `C(P)` alone) while the others park evenly in the `(0, π/m_1)` arc; then
/// the smallest robot steps inward.
fn excess_on_c1(
    a: &Analysis,
    rs: usize,
    zf: &ZFrame,
    plan: &TargetPlan,
    on_c1: &[usize],
) -> Decision {
    let tol = &a.tol;
    let m1 = plan.counts[0];
    let mut sorted: Vec<usize> = on_c1.to_vec();
    sorted.sort_by(|&x, &y| {
        zf.angle_of(a.config.point(x)).total_cmp(&zf.angle_of(a.config.point(y)))
    });
    let k = sorted.len();
    let keepers = &sorted[k - m1..];
    let parked = &sorted[..k - m1];

    // Polygon vertices: (2j+1)·π/m1 — symmetric about the zero ray, none on
    // it.
    let mut poly: Vec<f64> = (0..m1).map(|j| (2 * j + 1) as f64 * PI / m1 as f64).collect();
    poly.sort_by(f64::total_cmp);
    let keepers_placed = keepers
        .iter()
        // apf-lint: allow(zip-length-mismatch) — keepers (&sorted[k - m1..]) and poly (0..m1) are both exactly m1 long
        .zip(poly.iter())
        .all(|(&r, &t)| ang_close(zf.angle_of(a.config.point(r)), t, tol));
    if keepers_placed {
        // The m1-gon holds C(P): the smallest robot leaves.
        let mover = sorted[0];
        if a.me != mover {
            return Decision::Stay;
        }
        return nudge_inward(a, rs, mover, plan, Some(0));
    }
    // Everyone on C1 heads for its slot (keepers → polygon, parked → arc).
    let arc_slots: Vec<f64> = (1..=parked.len())
        .map(|j| j as f64 * (PI / m1 as f64) / (parked.len() + 1) as f64)
        .collect();
    let my_idx = sorted.iter().position(|&i| i == a.me);
    let Some(my_idx) = my_idx else { return Decision::Stay };
    let dest = if my_idx < parked.len() { arc_slots[my_idx] } else { poly[my_idx - parked.len()] };
    move_on_circle(a, zf, rs, dest, &sorted, true, false)
}

/// Moves the observer along its circle toward `dest` (a `Z`-angle), never
/// crossing the zero ray, never passing another robot on the same circle,
/// and (when `preserve_sec`) never opening a gap wider than π between
/// consecutive `C(P)` robots.
pub fn move_on_circle(
    a: &Analysis,
    zf: &ZFrame,
    rs: usize,
    dest: f64,
    same_circle: &[usize],
    preserve_sec: bool,
    allow_stack: bool,
) -> Decision {
    let my_pos = a.my_pos();
    let my_z = zf.angle_of(my_pos);
    rotate_with_constraints(a, zf, rs, my_pos, my_z, dest, same_circle, preserve_sec, allow_stack)
}

/// Rotation helper without same-circle blocking context (recomputes it).
fn rotate_toward(
    a: &Analysis,
    zf: &ZFrame,
    my_pos: Point,
    my_z: f64,
    dest: f64,
    preserve_sec: bool,
) -> Decision {
    let tol = &a.tol;
    let my_r = my_pos.dist(Point::ORIGIN);
    let same: Vec<usize> = (0..a.n()).filter(|&i| i != a.me && tol.eq(a.radius(i), my_r)).collect();
    rotate_with_constraints(a, zf, usize::MAX, my_pos, my_z, dest, &same, preserve_sec, false)
}

#[allow(clippy::too_many_arguments)]
fn rotate_with_constraints(
    a: &Analysis,
    zf: &ZFrame,
    rs: usize,
    my_pos: Point,
    my_z: f64,
    dest: f64,
    same_circle: &[usize],
    preserve_sec: bool,
    allow_stack: bool,
) -> Decision {
    let tol = &a.tol;
    if (my_z - dest).abs() <= tol.angle_eps {
        return Decision::Stay;
    }
    // Move without wrapping through the zero ray, at most 0.3 rad per
    // cycle: short arcs bound how stale an in-flight path can get, which is
    // what keeps reassignment races (two robots converging on one slot
    // around a phase transition) from colliding — a robot always re-observes
    // the slot's occupancy before its final approach.
    let increasing = dest > my_z;
    let mut target = if increasing { dest.min(my_z + 0.3) } else { dest.max(my_z - 0.3) };

    // Blocking: a robot between me and the target caps my travel at 45% of
    // the gap to it — deliberately *less* than the paper's midpoint rule, so
    // two robots approaching each other simultaneously (each capping
    // against the other's stale position) can never meet at the shared
    // midpoint. When `allow_stack` (the destination is a genuine
    // multiplicity target, Section 5), a robot standing exactly *at* the
    // target is exempt — robots sharing a destination may stack; otherwise a
    // robot at the target blocks like any other.
    // Minimum angular separation maintained from any blocker. This must be
    // *macroscopic* (≫ the ordering tolerance): creeping asymptotically
    // toward an occupied slot would bring two robots within
    // ordering-noise of each other, after which different observers
    // disagree on their ranks and the formation deadlocks.
    const MIN_SEPARATION: f64 = 1e-3;
    for &i in same_circle {
        if i == a.me || i == rs {
            continue;
        }
        let z = zf.angle_of(a.config.point(i));
        let at_target = (z - target).abs() <= tol.angle_eps;
        let between = if increasing {
            z > my_z + tol.angle_eps && (z < target - tol.angle_eps || (at_target && !allow_stack))
        } else {
            z < my_z - tol.angle_eps && (z > target + tol.angle_eps || (at_target && !allow_stack))
        };
        if between {
            let capped = if increasing {
                (my_z + 0.45 * (z - my_z)).min(z - MIN_SEPARATION)
            } else {
                (my_z + 0.45 * (z - my_z)).max(z + MIN_SEPARATION)
            };
            target = if increasing {
                target.min(capped.max(my_z))
            } else {
                target.max(capped.min(my_z))
            };
        }
    }

    if preserve_sec {
        // Keep every angular gap on C(P) at most π: cap the travel so the
        // gap to the neighbor I am moving away from never exceeds π. A gap
        // of exactly π still holds C(P) (two diametral points), and the
        // |C(F) ∩ F'| = 2 case *requires* reaching exactly-diametral
        // positions, so the margin is only numerical.
        let margin = 1e-9;
        let mut neighbors: Vec<f64> = same_circle
            .iter()
            .filter(|&&i| i != a.me && i != rs)
            .map(|&i| zf.angle_of(a.config.point(i)))
            .collect();
        neighbors.sort_by(f64::total_cmp);
        if !neighbors.is_empty() {
            if increasing {
                // Neighbor behind me (largest angle below my_z, cyclically).
                let behind = neighbors
                    .iter()
                    .copied()
                    .filter(|&z| z < my_z)
                    .fold(f64::NEG_INFINITY, f64::max);
                let behind = if behind.is_finite() {
                    behind
                } else {
                    // apf-lint: allow(panic-policy) — guarded by !neighbors.is_empty() above
                    neighbors.last().copied().unwrap() - TAU
                };
                target = target.min(behind + PI - margin);
                if target <= my_z {
                    return Decision::Stay;
                }
            } else {
                let ahead =
                    neighbors.iter().copied().filter(|&z| z > my_z).fold(f64::INFINITY, f64::min);
                let ahead = if ahead.is_finite() {
                    ahead
                } else {
                    // apf-lint: allow(panic-policy) — guarded by !neighbors.is_empty() above
                    neighbors.first().copied().unwrap() + TAU
                };
                target = target.max(ahead - PI + margin);
                if target >= my_z {
                    return Decision::Stay;
                }
            }
        }
    }

    let dz = target - my_z;
    if dz.abs() <= tol.angle_eps {
        return Decision::Stay;
    }
    let p = zf.rotate(my_pos, dz);
    Decision::Move(a.denormalize_path(&p))
}
