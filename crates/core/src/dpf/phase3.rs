//! Phase 3: rotate the robots on their circles into the exact pattern
//! positions.
//!
//! Every circle now carries exactly the right number of robots. On each
//! circle, robots and targets are matched in `Z`-angle order (so the
//! matching is agreed upon by everyone), and each robot moves along the arc
//! toward its target that does **not** contain the zero ray — no robot ever
//! crosses another (the "waiting" relation has no cycle because the circle
//! minus the zero ray is a line segment). On `C_1 = C(P)` movements are
//! additionally capped so the enclosing circle never changes.

use crate::analysis::Analysis;
use crate::dpf::phase1::ZFrame;
use crate::dpf::phase2::move_on_circle;
use crate::dpf::TargetPlan;
use apf_sim::{ComputeError, Decision};

/// Rotates robots to their targets. Returns `Ok(None)` when every robot of
/// `P' = P − {r_s}` stands on its pattern position.
pub fn rotate_to_targets(
    a: &Analysis,
    rs: usize,
    zf: &ZFrame,
    plan: &TargetPlan,
) -> Result<Option<Decision>, ComputeError> {
    let tol = &a.tol;
    let mut all_placed = true;
    let mut my_move: Option<Decision> = None;

    for (ci_idx, &ci) in plan.circles.iter().enumerate() {
        // Robots on this circle, sorted by Z-angle.
        let mut robots: Vec<usize> =
            (0..a.n()).filter(|&i| i != rs && tol.eq(a.radius(i), ci)).collect();
        robots.sort_by(|&x, &y| {
            zf.angle_of(a.config.point(x)).total_cmp(&zf.angle_of(a.config.point(y)))
        });
        // Targets on this circle, sorted by Z-angle.
        let mut targets: Vec<f64> =
            plan.targets.iter().filter(|t| tol.eq(t.radius, ci)).map(|t| t.angle).collect();
        targets.sort_by(f64::total_cmp);
        if robots.len() != targets.len() {
            return Err(ComputeError::new("phase 3 invoked before circles were populated"));
        }

        if std::env::var_os("APF_DEBUG").is_some() && !robots.is_empty() {
            let angs: Vec<(usize, f64)> =
                robots.iter().map(|&i| (i, zf.angle_of(a.config.point(i)))).collect();
            eprintln!("  [rotate ci={ci:.4} robots={angs:?} targets={targets:?}]");
        }
        for (pos, &r) in robots.iter().enumerate() {
            let my_z = zf.angle_of(a.config.point(r));
            let dest = targets[pos];
            if apf_geometry::angle::angle_dist(my_z, dest) <= tol.angle_eps.max(1e-7) {
                continue;
            }
            all_placed = false;
            if r == a.me {
                // Stacking onto the destination is legal only when the
                // pattern genuinely has several targets there.
                let dup = targets.iter().filter(|&&t| (t - dest).abs() <= tol.angle_eps).count();
                my_move = Some(move_on_circle(a, zf, rs, dest, &robots, ci_idx == 0, dup >= 2));
            }
        }
    }

    if all_placed {
        return Ok(None);
    }
    Ok(Some(my_move.unwrap_or(Decision::Stay)))
}
