//! Per-snapshot analysis shared by every phase of the algorithm.
//!
//! All geometric reasoning happens in a *normalized* copy of the snapshot:
//! translated and scaled so that `C(P)` is the unit circle at the origin
//! (the paper's "robots can translate and scale their local coordinate
//! system so that `C(P) = C(F)`"). The target pattern is normalized the same
//! way. Decisions are made in normalized coordinates and the resulting paths
//! are mapped back to the robot's local frame by [`Analysis::denormalize_path`].

use apf_geometry::symmetry::{
    find_shifted_regular, regular_set_of, RegularSet, ShiftedRegularSet, ViewAnalysis,
};
use apf_geometry::{circle::holds_sec, Configuration, Path, PathSegment, Point, PolarPoint, Tol};
use apf_sim::{ComputeError, Snapshot};

/// Everything a robot derives from one Look, in normalized coordinates.
#[derive(Debug)]
pub struct Analysis {
    /// Normalized configuration: `C(P)` = unit circle at origin.
    pub config: Configuration,
    /// The observer's index into [`Self::config`].
    pub me: usize,
    /// Normalized pattern `F`: `C(F)` = unit circle at origin.
    pub pattern: Vec<Point>,
    /// `l_F`: distance from the center of the second-closest point of `F`.
    pub l_f: f64,
    /// Simulation tolerance.
    pub tol: Tol,
    /// Whether the snapshot exposes multiplicities.
    pub multiplicity_detection: bool,
    /// Center of `C(P)` and scale of the original snapshot (for
    /// denormalization back into the robot's local frame).
    norm_center: Point,
    norm_scale: f64,
    /// Lazily computed view analysis around the origin.
    views: std::cell::OnceCell<ViewAnalysis>,
    /// Lazily computed regular set.
    regular: std::cell::OnceCell<Option<RegularSet>>,
    /// Lazily computed shifted regular set.
    shifted: std::cell::OnceCell<Option<ShiftedRegularSet>>,
}

impl Analysis {
    /// Builds the analysis from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ComputeError`] when the snapshot has fewer points than the
    /// pattern requires context for, or all robots coincide (the gathered
    /// configuration is unreachable by assumption and unnormalizable).
    pub fn new(snapshot: &Snapshot) -> Result<Self, ComputeError> {
        let tol = *snapshot.tol();
        let raw = snapshot.robots();
        if raw.len() < 2 {
            return Err(ComputeError::new("need at least two robots"));
        }
        let cfg_raw = Configuration::new(raw.to_vec());
        let sec = cfg_raw.sec();
        if tol.is_zero(sec.radius) {
            return Err(ComputeError::new("all robots coincide; configuration unnormalizable"));
        }
        let norm = |p: Point| ((p - sec.center) / sec.radius).to_point();
        let config = Configuration::new(raw.iter().map(|&p| norm(p)).collect());

        let pat_raw = snapshot.pattern();
        if pat_raw.len() < 4 {
            return Err(ComputeError::new("pattern needs at least four points"));
        }
        let pat_cfg = Configuration::new(pat_raw.to_vec());
        let pat_sec = pat_cfg.sec();
        if tol.is_zero(pat_sec.radius) {
            return Err(ComputeError::new("degenerate pattern (single location)"));
        }
        let pattern: Vec<Point> =
            pat_raw.iter().map(|&p| ((p - pat_sec.center) / pat_sec.radius).to_point()).collect();
        let l_f = Configuration::new(pattern.clone()).second_closest_distance(Point::ORIGIN);

        Ok(Analysis {
            config,
            me: snapshot.self_index(),
            pattern,
            l_f,
            tol,
            multiplicity_detection: snapshot.multiplicity_detection(),
            norm_center: sec.center,
            norm_scale: sec.radius,
            views: std::cell::OnceCell::new(),
            regular: std::cell::OnceCell::new(),
            shifted: std::cell::OnceCell::new(),
        })
    }

    /// Number of robots.
    pub fn n(&self) -> usize {
        self.config.len()
    }

    /// The observer's normalized position.
    pub fn my_pos(&self) -> Point {
        self.config.point(self.me)
    }

    /// Distance of robot `i` from the origin (= `c(P)` = center of `C(P)`).
    pub fn radius(&self, i: usize) -> f64 {
        self.config.point(i).dist(Point::ORIGIN)
    }

    /// Polar coordinates of robot `i` around the origin.
    pub fn polar(&self, i: usize) -> PolarPoint {
        PolarPoint::from_cartesian(self.config.point(i), Point::ORIGIN)
    }

    /// View analysis around the origin (cached).
    pub fn views(&self) -> &ViewAnalysis {
        self.views.get_or_init(|| ViewAnalysis::compute(&self.config, Point::ORIGIN, &self.tol))
    }

    /// `reg(P)` (cached).
    pub fn regular(&self) -> Option<&RegularSet> {
        self.regular.get_or_init(|| regular_set_of(&self.config, &self.tol)).as_ref()
    }

    /// The ε-shifted regular set (cached).
    pub fn shifted(&self) -> Option<&ShiftedRegularSet> {
        self.shifted.get_or_init(|| find_shifted_regular(&self.config, &self.tol)).as_ref()
    }

    /// The selected robot, if any: the robot `r` with `|r| < l_F / 2` that is
    /// alone in the open disc `D(2|r|)`.
    ///
    /// A robot at (or numerically indistinguishable from) the center counts
    /// as selected — Phase 1 of `ψ_DPF` deliberately parks the selected
    /// robot at `c(P)` while rebuilding the coordinate frame, and it must
    /// not lose its role there. At most one robot can be selected (two
    /// would have to be within a factor 2 of each other both ways); if the
    /// predicate ever matches several robots (degenerate near-center ties)
    /// no robot is selected.
    pub fn selected(&self) -> Option<usize> {
        let hits: Vec<usize> = (0..self.n())
            .filter(|&i| {
                let r = self.radius(i);
                if !self.tol.lt(r, self.l_f / 2.0) {
                    return false;
                }
                (0..self.n()).all(|j| j == i || self.tol.ge(self.radius(j), 2.0 * r))
            })
            .collect();
        match hits.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Indices of pattern points with maximal view that do not hold `C(F)`
    /// (the candidate destinations `f_s` of the selected robot).
    pub fn pattern_max_view_nonholders(&self) -> Vec<usize> {
        let cfg = Configuration::new(self.pattern.clone());
        let va = ViewAnalysis::compute(&cfg, Point::ORIGIN, &self.tol);
        let mut best: Option<usize> = None;
        for i in 0..self.pattern.len() {
            if holds_sec(&self.pattern, i, &self.tol) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if va.view(i) > va.view(b) {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(b) = best else { return vec![] };
        let cfg_va = va;
        (0..self.pattern.len())
            .filter(|&i| {
                !holds_sec(&self.pattern, i, &self.tol) && cfg_va.view(i) == cfg_va.view(b)
            })
            .collect()
    }

    /// Maps a normalized-coordinates path back into the robot's local
    /// (snapshot) frame.
    pub fn denormalize_path(&self, path: &Path) -> Path {
        let segs: Vec<PathSegment> = path
            .segments()
            .iter()
            .map(|seg| match *seg {
                PathSegment::Line { from, to } => {
                    PathSegment::line(self.denorm_point(from), self.denorm_point(to))
                }
                PathSegment::Arc { center, radius, start_angle, sweep, orientation } => {
                    PathSegment::arc(
                        self.denorm_point(center),
                        radius * self.norm_scale,
                        start_angle,
                        sweep,
                        orientation,
                    )
                }
            })
            .collect();
        Path::from_segments(segs)
    }

    /// Maps a normalized point back into the robot's local frame.
    pub fn denorm_point(&self, p: Point) -> Point {
        (p.to_vector() * self.norm_scale).to_point() + self.norm_center.to_vector()
    }

    /// A straight move of the observer (normalized coordinates) rendered as
    /// a local-frame decision path.
    pub fn straight_move(&self, to: Point) -> Path {
        self.denormalize_path(&Path::straight(self.my_pos(), to))
    }

    /// Replaces the working pattern (used by the multiplicity extension to
    /// swap in `F̃`). The replacement must already be normalized (unit
    /// enclosing circle at the origin); `l_F` is recomputed.
    pub fn override_pattern(&mut self, pattern: Vec<Point>) {
        assert!(pattern.len() >= 2, "pattern too small");
        self.l_f = Configuration::new(pattern.clone()).second_closest_distance(Point::ORIGIN);
        self.pattern = pattern;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_sim::Snapshot;
    use std::f64::consts::TAU;

    fn ring(n: usize, r: f64, phase: f64, c: Point) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = TAU * i as f64 / n as f64 + phase;
                Point::new(c.x + r * a.cos(), c.y + r * a.sin())
            })
            .collect()
    }

    fn snapshot_of(robots: Vec<Point>, pattern: Vec<Point>) -> Snapshot {
        Snapshot::new(robots, pattern, false, Tol::default())
    }

    #[test]
    fn normalization_centers_and_scales() {
        let c = Point::new(3.0, -1.0);
        let mut robots = ring(7, 2.0, 0.1, c);
        robots[0] = c; // observer at origin requirement: move observer
        let mut robots_local: Vec<Point> = robots.iter().map(|&p| (p - c).to_point()).collect();
        robots_local[0] = Point::ORIGIN;
        let pattern = ring(7, 5.0, 0.0, Point::new(10.0, 10.0));
        let snap = snapshot_of(robots_local, pattern);
        let a = Analysis::new(&snap).unwrap();
        assert!(a.tol.eq(a.config.sec().radius, 1.0));
        assert!(a.config.sec().center.approx_eq(Point::ORIGIN, &a.tol));
        // Pattern normalized too.
        let pc = Configuration::new(a.pattern.clone());
        assert!(a.tol.eq(pc.sec().radius, 1.0));
    }

    #[test]
    fn selected_robot_detection() {
        // Pattern with l_F around 0.5; a robot close to the center and alone
        // within twice its radius is selected.
        let mut pattern = ring(6, 1.0, 0.0, Point::ORIGIN);
        pattern.push(Point::new(0.5, 0.0)); // second closest at 0.5 → l_F = 0.5... need "second closest": closest=0.5, second=1.0. l_F=1.0?? -> recompute below
        let mut robots = ring(6, 1.0, 0.2, Point::ORIGIN);
        robots.push(Point::new(0.05, 0.0));
        // Observer must be at origin: translate all so robot 6 is origin.
        let off = robots[6];
        let local: Vec<Point> = robots.iter().map(|&p| (p - off).to_point()).collect();
        let snap = snapshot_of(local, pattern);
        let a = Analysis::new(&snap).unwrap();
        // normalized: SEC ~ unit, robot 6 at ~0.05 from center, others at 1.
        // l_F here is the 2nd closest of the pattern = 1.0 (one point at 0.5,
        // six at 1.0). Selected requires |r| < 0.5 and alone in D(2|r|).
        let sel = a.selected();
        assert_eq!(sel, Some(6));
    }

    #[test]
    fn no_selected_in_uniform_ring() {
        let robots = ring(8, 1.0, 0.0, Point::ORIGIN);
        let local: Vec<Point> = robots.iter().map(|&p| (p - robots[0]).to_point()).collect();
        let pattern = ring(8, 1.0, 0.3, Point::ORIGIN);
        let snap = snapshot_of(local, pattern);
        let a = Analysis::new(&snap).unwrap();
        assert_eq!(a.selected(), None);
    }

    #[test]
    fn denormalize_roundtrip() {
        let c = Point::new(5.0, 5.0);
        let robots = ring(7, 3.0, 0.0, c);
        let local: Vec<Point> = robots.iter().map(|&p| (p - robots[0]).to_point()).collect();
        let pattern = ring(7, 1.0, 0.0, Point::ORIGIN);
        let snap = snapshot_of(local, pattern);
        let a = Analysis::new(&snap).unwrap();
        // The observer's normalized position denormalizes back to its local
        // position (the local origin).
        let back = a.denorm_point(a.my_pos());
        assert!(back.approx_eq(Point::ORIGIN, &Tol::new(1e-9)));
    }

    #[test]
    fn pattern_max_view_nonholders_nonempty() {
        let mut pattern = ring(6, 1.0, 0.0, Point::ORIGIN);
        pattern.push(Point::new(0.3, 0.2));
        let robots = ring(7, 1.0, 0.0, Point::ORIGIN);
        let local: Vec<Point> = robots.iter().map(|&p| (p - robots[0]).to_point()).collect();
        let snap = snapshot_of(local, pattern);
        let a = Analysis::new(&snap).unwrap();
        let cands = a.pattern_max_view_nonholders();
        assert!(!cands.is_empty());
    }

    #[test]
    fn too_small_pattern_is_rejected() {
        let robots = vec![Point::ORIGIN, Point::new(1.0, 0.0)];
        let snap = snapshot_of(robots, vec![Point::ORIGIN; 2]);
        assert!(Analysis::new(&snap).is_err());
    }
}
