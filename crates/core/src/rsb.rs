//! `ψ_RSB` — the randomized symmetry-breaking algorithm (Section 3).
//!
//! Goal: starting from any configuration without a selected robot, reach a
//! configuration with a *selected* robot (strictly closest to the center by
//! a factor 2 and inside `D(l_F/2)`), using one random bit per robot per
//! cycle.
//!
//! Two sub-algorithms with disjoint active sets:
//!
//! * `ψ_RSB|Q` — the configuration contains a (possibly shifted) regular
//!   set: a probabilistic *election* among the members closest to the
//!   center (each flips one fair coin per activation: step toward or away
//!   from the center), followed by a deterministic "shift protocol" on the
//!   elected robot's circle that announces each stage of the descent
//!   (ε = 1/8: members, descend to my circle; ε = 1/4: I am descending to
//!   become selected);
//! * `ψ_RSB|Qc` — no regular structure: the configuration is asymmetric, so
//!   the unique maximal-view robot deterministically descends toward the
//!   center until it is selected.
//!
//! # Engineering notes (documented deviations)
//!
//! * `handlePartiallyFormedPattern` (Appendix A) guards against the election
//!   accidentally completing the pattern with `n−1` robots. Our workload
//!   generators never produce configurations in that corner, and the main
//!   dispatch already checks the "pattern-minus-one" exit condition first,
//!   so the pre-phase is omitted (see DESIGN.md).
//! * In `ψ_RSB|Qc` the paper stops `r_max` at the first point of
//!   `[r_max, c(P))` where the whole configuration would become regular.
//!   Radial movement never changes half-line structure around `c(P)`, so
//!   such a point can only exist for regularity around *other* centers — a
//!   measure-zero event under our generators; `r_max` descends directly to
//!   the selected radius.

use crate::analysis::Analysis;
use apf_geometry::angle::signed_angle_diff;
use apf_geometry::{path, Point, PolarPoint};
use apf_sim::{BitSource, ComputeError, Decision, PhaseKind};

/// Fraction of the feasible radius the descending robot targets: must leave
/// it strictly inside `D(l_F/2)` and strictly alone in `D(2|r|)`.
const SELECTED_RADIUS_FACTOR: f64 = 0.4;

/// Runs one activation of `ψ_RSB` for the observer.
///
/// The returned [`PhaseKind`] names the sub-phase that produced the
/// decision: [`PhaseKind::RsbShift`] for the shift protocol,
/// [`PhaseKind::RsbElected`]/[`PhaseKind::RsbElection`] inside `ψ_RSB|Q`,
/// and [`PhaseKind::RsbAsymmetric`] for the deterministic `ψ_RSB|Qc`
/// descent. Only the election ever draws randomness — the inspector checks
/// its cycles against the paper's one-bit bound.
///
/// # Errors
///
/// Returns [`ComputeError`] if the configuration is outside every branch's
/// domain (no regular structure *and* no unique maximal-view robot) — by
/// Property 1 this cannot happen for valid inputs.
pub fn select_a_robot(
    a: &Analysis,
    bits: &mut dyn BitSource,
) -> Result<(Decision, PhaseKind), ComputeError> {
    if let Some(shifted) = a.shifted() {
        return Ok((act_shifted(a, shifted), PhaseKind::RsbShift));
    }
    if let Some(regular) = a.regular() {
        return act_regular(a, regular, bits);
    }
    Ok((act_asymmetric(a)?, PhaseKind::RsbAsymmetric))
}

/// The configuration contains an ε-shifted regular set: drive the shift
/// protocol forward.
fn act_shifted(a: &Analysis, sh: &apf_geometry::symmetry::ShiftedRegularSet) -> Decision {
    let tol = &a.tol;
    let c = sh.center;
    let re = sh.shifted_robot;
    let my_pos = a.my_pos();

    // Members (other than the shifted robot) that are farther out than the
    // shifted robot's circle.
    let s: Vec<usize> = sh
        .indices
        .iter()
        .copied()
        .filter(|&i| i != re && tol.gt(a.config.point(i).dist(c), sh.min_radius))
        .collect();

    let eps_is = |target: f64| (sh.epsilon - target).abs() <= 1e-3;
    if std::env::var_os("APF_DEBUG").is_some() {
        eprintln!(
            "[rsb me={} re={re}] eps={:.6} min_r={:.6} S={s:?} l_f={:.4}",
            a.me, sh.epsilon, sh.min_radius, a.l_f
        );
    }

    if !s.is_empty() && !eps_is(0.125) {
        // Stage 1: the shifted robot tunes its shift to exactly 1/8.
        if a.me == re {
            return rotate_to_shift(a, sh, 0.125);
        }
        return Decision::Stay;
    }
    if !s.is_empty() && eps_is(0.125) {
        // Stage 2: outer members descend radially to the shifted robot's
        // circle.
        if s.contains(&a.me) {
            let p = path::radial_to(c, my_pos, sh.min_radius);
            return Decision::Move(a.denormalize_path(&p));
        }
        return Decision::Stay;
    }
    // All members are on the shifted robot's circle.
    if sh.epsilon < 0.25 - 1e-3 {
        // Stage 3: announce the descent by widening the shift to 1/4.
        if a.me == re {
            return rotate_to_shift(a, sh, 0.25);
        }
        return Decision::Stay;
    }
    // Stage 4: descend radially toward the center until selected.
    if a.me == re {
        let others_min = (0..a.n())
            .filter(|&i| i != re)
            .map(|i| a.config.point(i).dist(c))
            .fold(f64::INFINITY, f64::min);
        let target = SELECTED_RADIUS_FACTOR * a.l_f.min(others_min);
        let my_r = my_pos.dist(c);
        if my_r > target + tol.eps {
            let p = path::radial_to(c, my_pos, target);
            return Decision::Move(a.denormalize_path(&p));
        }
    }
    Decision::Stay
}

/// Rotates the shifted robot on its circle so that its shift becomes exactly
/// `target` (in units of `α_min(P')`).
fn rotate_to_shift(
    a: &Analysis,
    sh: &apf_geometry::symmetry::ShiftedRegularSet,
    target: f64,
) -> Decision {
    let c = sh.center;
    let my_pos = a.my_pos();
    let my_angle = PolarPoint::from_cartesian(my_pos, c).angle;
    let assoc_angle = PolarPoint::from_cartesian(sh.associated_position, c).angle;
    // Signed current shift: positive when the robot is CCW of its slot.
    let sigma = signed_angle_diff(assoc_angle, my_angle);
    // α_min(P') recovered from the detected ε (ε = |σ| / α_min(P')).
    let alpha_min = sigma.abs() / sh.epsilon;
    let target_abs = target * alpha_min;
    let desired = sigma.signum() * target_abs;
    let delta = desired - sigma;
    if delta.abs() <= a.tol.angle_eps {
        return Decision::Stay;
    }
    let p = path::rotate_on_circle(c, my_pos, delta);
    Decision::Move(a.denormalize_path(&p))
}

/// The configuration contains an (unshifted) regular set: run the
/// probabilistic election among its members.
fn act_regular(
    a: &Analysis,
    q: &apf_geometry::symmetry::RegularSet,
    bits: &mut dyn BitSource,
) -> Result<(Decision, PhaseKind), ComputeError> {
    let tol = &a.tol;
    let c = q.center;
    if !q.indices.contains(&a.me) {
        // Non-members hold still during the election.
        return Ok((Decision::Stay, PhaseKind::RsbElection));
    }
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(c);
    let members_min = q
        .indices
        .iter()
        .copied()
        .filter(|&i| i != a.me)
        .map(|i| a.config.point(i).dist(c))
        .fold(f64::INFINITY, f64::min);

    if my_r < 0.875 * members_min {
        // I am elected and aware of it: create a 1/8-shifted regular set by
        // moving on my circle toward my angularly nearest neighbor.
        return Ok((create_shift(a, c), PhaseKind::RsbElected));
    }
    if tol.lt(members_min, my_r) {
        // Someone is strictly closer: wait.
        return Ok((Decision::Stay, PhaseKind::RsbElection));
    }
    // I am among the closest members: flip the cycle's coin.
    let d = (0..a.n())
        .filter(|&i| !q.indices.contains(&i))
        .map(|i| a.config.point(i).dist(c))
        .fold(f64::INFINITY, f64::min);
    let decision = if bits.bit() {
        // Toward the center by |r|/8.
        let p = path::radial_to(c, my_pos, my_r * (1.0 - 0.125));
        Decision::Move(a.denormalize_path(&p))
    } else {
        // Away by min((d − |r|)/2, |r|/7) — possibly a null move. Unlike the
        // paper's exact-arithmetic robots, we additionally keep members a
        // *macroscopic* margin below the innermost non-member circle `d`:
        // the paper's halving alone converges below the tolerance in a few
        // dozen flips, after which members and non-members become
        // radius-indistinguishable and set detection misreads membership.
        let ceiling = if d.is_finite() { 0.9 * d } else { f64::INFINITY };
        let away = if d.is_finite() {
            ((d - my_r) / 2.0).min(my_r / 7.0).min(ceiling - my_r)
        } else {
            my_r / 7.0
        };
        if away <= tol.eps {
            return Ok((Decision::Stay, PhaseKind::RsbElection));
        }
        let p = path::radial_to(c, my_pos, my_r + away);
        Decision::Move(a.denormalize_path(&p))
    };
    Ok((decision, PhaseKind::RsbElection))
}

/// The elected robot moves on its circle by `α_min(P)/8` toward its
/// angularly nearest half-line, creating a 1/8-shifted regular set.
fn create_shift(a: &Analysis, c: Point) -> Decision {
    let my_pos = a.my_pos();
    let my_angle = PolarPoint::from_cartesian(my_pos, c).angle;
    // Signed angular distances to every other robot's half-line.
    let mut nearest: Option<f64> = None; // signed diff to the nearest
    let mut alpha_min = f64::INFINITY;
    for i in 0..a.n() {
        if i == a.me {
            continue;
        }
        let other = PolarPoint::from_cartesian(a.config.point(i), c);
        if a.tol.is_zero(other.radius) {
            continue;
        }
        let d = signed_angle_diff(my_angle, other.angle);
        if d.abs() <= a.tol.angle_eps {
            continue; // same half-line
        }
        if d.abs() < alpha_min {
            alpha_min = d.abs();
            nearest = Some(d);
        }
    }
    let Some(nearest) = nearest else { return Decision::Stay };
    let delta = nearest.signum() * alpha_min / 8.0;
    let p = path::rotate_on_circle(c, my_pos, delta);
    Decision::Move(a.denormalize_path(&p))
}

/// `ψ_RSB|Qc`: no regular structure — the unique maximal-view robot descends
/// toward the center until it is selected.
fn act_asymmetric(a: &Analysis) -> Result<Decision, ComputeError> {
    let views = a.views();
    // Maximal view among robots that do not hold C(P).
    let holders: Vec<bool> =
        (0..a.n()).map(|i| apf_geometry::circle::holds_sec(a.config.points(), i, &a.tol)).collect();
    let eligible: Vec<usize> = (0..a.n()).filter(|&i| !holders[i]).collect();
    if eligible.is_empty() {
        return Err(ComputeError::new(
            "every robot holds C(P); asymmetric descent has no candidate",
        ));
    }
    let rmax = *eligible
        .iter()
        .max_by(|&&x, &&y| views.view(x).cmp(views.view(y)))
        // apf-lint: allow(panic-policy) — guarded by the eligible.is_empty() error above
        .expect("eligible is non-empty");
    // Uniqueness of the maximum among eligible robots.
    let max_count = eligible.iter().filter(|&&i| views.view(i) == views.view(rmax)).count();
    if max_count != 1 {
        return Err(ComputeError::new(
            "no unique maximal view in an allegedly asymmetric configuration",
        ));
    }
    if a.me != rmax {
        return Ok(Decision::Stay);
    }
    let my_pos = a.my_pos();
    let my_r = my_pos.dist(Point::ORIGIN);
    let others_min =
        (0..a.n()).filter(|&i| i != a.me).map(|i| a.radius(i)).fold(f64::INFINITY, f64::min);
    let target = SELECTED_RADIUS_FACTOR * a.l_f.min(others_min);
    if my_r <= target + a.tol.eps {
        return Ok(Decision::Stay);
    }
    let p = path::radial_to(Point::ORIGIN, my_pos, target);
    Ok(Decision::Move(a.denormalize_path(&p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_geometry::Tol;
    use apf_sim::{CountingBits, NullBits, Snapshot};
    use std::f64::consts::TAU;

    fn ring(n: usize, r: f64, phase: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = TAU * i as f64 / n as f64 + phase;
                Point::new(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    /// Builds an analysis with the observer being robot `me` (positions are
    /// translated so the observer sits at the local origin).
    fn analysis_for(points: &[Point], me: usize, pattern: Vec<Point>) -> Analysis {
        let off = points[me];
        let local: Vec<Point> = points.iter().map(|&p| (p - off).to_point()).collect();
        let snap = Snapshot::new(local, pattern, false, Tol::default());
        let a = Analysis::new(&snap).unwrap();
        assert_eq!(a.me, me);
        a
    }

    fn pattern7() -> Vec<Point> {
        apf_patterns::random_pattern(7, 1)
    }

    #[test]
    fn asymmetric_branch_moves_only_rmax() {
        let pts = apf_patterns::asymmetric_configuration(7, 3);
        // Identify rmax by running the branch for every robot: exactly one
        // robot moves.
        let mut movers = 0;
        for me in 0..7 {
            let a = analysis_for(&pts, me, pattern7());
            assert!(a.regular().is_none() && a.shifted().is_none(), "workload must be in Qc");
            let mut bits = NullBits;
            let (decision, phase) = select_a_robot(&a, &mut bits).unwrap();
            assert_eq!(phase, PhaseKind::RsbAsymmetric);
            match decision {
                Decision::Move(_) => movers += 1,
                Decision::Stay => {}
            }
        }
        assert_eq!(movers, 1);
    }

    #[test]
    fn asymmetric_descent_reaches_selected() {
        let pts = apf_patterns::asymmetric_configuration(8, 11);
        // Find the mover and apply its full path; afterwards a selected
        // robot must exist.
        let mut current = pts.clone();
        for _ in 0..4 {
            let mut moved = false;
            for me in 0..current.len() {
                let a = analysis_for(
                    &current,
                    me,
                    pattern7().into_iter().chain([Point::new(0.9, 0.9)]).collect(),
                );
                if a.selected().is_some() {
                    return; // done
                }
                let mut bits = NullBits;
                if let (Decision::Move(p), _) = select_a_robot(&a, &mut bits).unwrap() {
                    // p is in the observer's local frame = global translated
                    // by -current[me]; map destination back to global.
                    let dest = p.destination();
                    current[me] = (dest.to_vector() + current[me].to_vector()).to_point();
                    moved = true;
                    break;
                }
            }
            assert!(moved, "descent must make progress");
        }
        // After at most a few full moves, selected must exist.
        let a = analysis_for(
            &current,
            0,
            pattern7().into_iter().chain([Point::new(0.9, 0.9)]).collect(),
        );
        assert!(a.selected().is_some(), "selected robot expected after descent");
    }

    #[test]
    fn election_flips_exactly_one_bit_per_closest_member() {
        let pts = ring(8, 1.0, 0.0);
        let a = analysis_for(&pts, 2, apf_patterns::random_pattern(8, 5));
        assert!(a.regular().is_some());
        let mut bits = CountingBits::new(9);
        let (_, phase) = select_a_robot(&a, &mut bits).unwrap();
        assert_eq!(phase, PhaseKind::RsbElection);
        assert_eq!(bits.bits_drawn(), 1, "one random bit per election cycle");
    }

    #[test]
    fn election_moves_are_radial() {
        let pts = ring(8, 1.0, 0.3);
        for seed in 0..8u64 {
            let a = analysis_for(&pts, 0, apf_patterns::random_pattern(8, 5));
            let mut bits = CountingBits::new(seed);
            if let (Decision::Move(p), _) = select_a_robot(&a, &mut bits).unwrap() {
                // The move must stay on the robot's half-line from the
                // center: start, end and center are collinear.
                let start = p.start();
                let end = p.destination();
                // Local frame: the configuration center is at -pts[0] in
                // local coordinates (observer at origin).
                let c_local = (Point::ORIGIN - pts[0].to_vector()).to_vector().to_point();
                let v1 = start - c_local;
                let v2 = end - c_local;
                assert!(v1.cross(v2).abs() < 1e-9, "radial move expected");
            }
        }
    }

    #[test]
    fn elected_robot_creates_shift() {
        // Ring of 8 with robot 0 pulled inward far enough to be elected.
        let mut pts = ring(8, 1.0, 0.0);
        pts[0] = Point::new(0.6, 0.0);
        let a = analysis_for(&pts, 0, apf_patterns::random_pattern(8, 5));
        assert!(a.regular().is_some(), "radius-perturbed ring keeps its regular set");
        let mut bits = NullBits;
        let (d, phase) = select_a_robot(&a, &mut bits).unwrap();
        assert_eq!(phase, PhaseKind::RsbElected);
        match d {
            Decision::Move(p) => {
                // The move is on the robot's circle: constant distance to the
                // center.
                let c_local = (Point::ORIGIN - pts[0].to_vector()).to_vector().to_point();
                let r0 = p.start().dist(c_local);
                let r1 = p.destination().dist(c_local);
                assert!((r0 - r1).abs() < 1e-9, "shift creation moves on the circle");
                assert!(p.length() > 1e-6);
            }
            Decision::Stay => panic!("elected robot must create the shift"),
        }
    }

    #[test]
    fn shifted_members_descend_at_one_eighth() {
        // Build a 1/8-shifted 8-set where members are on a larger circle
        // than the shifted robot.
        let alpha = TAU / 8.0;
        let mut pts: Vec<Point> = (0..8)
            .map(|i| {
                let mut ang = alpha * i as f64;
                let r = if i == 0 { 0.6 } else { 1.0 };
                if i == 0 {
                    ang += alpha / 8.0;
                }
                Point::new(r * ang.cos(), r * ang.sin())
            })
            .collect();
        // Nudge nothing else; robot 0 is shifted by ε = 1/8 (α_min = α here).
        let pattern = apf_patterns::random_pattern(8, 6);
        // A member (robot 3) should descend radially to radius 0.6.
        let a = analysis_for(&pts, 3, pattern.clone());
        let sh = a.shifted().expect("shifted set expected");
        assert_eq!(sh.shifted_robot, 0);
        assert!((sh.epsilon - 0.125).abs() < 1e-2, "epsilon = {}", sh.epsilon);
        let mut bits = NullBits;
        match select_a_robot(&a, &mut bits).unwrap() {
            (Decision::Move(p), phase) => {
                assert_eq!(phase, PhaseKind::RsbShift);
                let c_local = (Point::ORIGIN - pts[3].to_vector()).to_vector().to_point();
                assert!((p.destination().dist(c_local) - 0.6).abs() < 1e-6);
            }
            (Decision::Stay, _) => panic!("member must descend"),
        }
        // The shifted robot itself stays during stage 2.
        let a0 = analysis_for(&pts, 0, pattern.clone());
        let mut bits0 = NullBits;
        assert_eq!(select_a_robot(&a0, &mut bits0).unwrap().0, Decision::Stay);

        // Once everyone is on the same circle, the shifted robot widens the
        // shift toward 1/4.
        for p in pts.iter_mut().skip(1) {
            *p = Point::new(p.x * 0.6, p.y * 0.6);
        }
        let a1 = analysis_for(&pts, 0, pattern);
        let sh1 = a1.shifted().expect("still shifted");
        assert_eq!(sh1.shifted_robot, 0);
        let mut bits1 = NullBits;
        match select_a_robot(&a1, &mut bits1).unwrap().0 {
            Decision::Move(p) => {
                let c_local = (Point::ORIGIN - pts[0].to_vector()).to_vector().to_point();
                let r0 = p.start().dist(c_local);
                let r1 = p.destination().dist(c_local);
                assert!((r0 - r1).abs() < 1e-9, "stage 3 moves on the circle");
            }
            Decision::Stay => panic!("shifted robot must widen the shift"),
        }
    }
}
