//! Glue: build a ready-to-run simulation of the algorithm.

use crate::FormPattern;
use apf_geometry::{Configuration, Point, Tol};
use apf_scheduler::SchedulerKind;
use apf_sim::{World, WorldConfig};
use std::fmt;

/// Why an instance could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Fewer than 7 robots (Theorem 2's precondition).
    TooFewRobots(usize),
    /// `|I| != |F|`.
    SizeMismatch {
        /// Number of robots.
        robots: usize,
        /// Number of pattern points.
        pattern: usize,
    },
    /// The initial configuration contains a multiplicity point (out of
    /// scope, as in the paper — ASYNC scattering is open).
    InitialMultiplicity,
    /// The pattern contains multiplicity points but multiplicity detection
    /// was not enabled.
    NeedsMultiplicityDetection,
    /// The pattern is a single multiplicity point (the Gathering problem).
    GatheringUnsupported,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooFewRobots(n) => {
                write!(f, "the algorithm requires at least 7 robots, got {n}")
            }
            BuildError::SizeMismatch { robots, pattern } => {
                write!(f, "{robots} robots cannot form a {pattern}-point pattern")
            }
            BuildError::InitialMultiplicity => {
                write!(f, "initial configurations with multiplicity points are out of scope")
            }
            BuildError::NeedsMultiplicityDetection => {
                write!(f, "pattern has multiplicity points: enable multiplicity detection")
            }
            BuildError::GatheringUnsupported => {
                write!(f, "a single-point pattern is the Gathering problem, out of scope")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Validates an instance against the paper's preconditions without building
/// a world: size bounds, no initial multiplicity, and pattern-multiplicity
/// versus detection-capability consistency.
///
/// [`SimulationBuilder::build`] and the bench crate's `RunSpec` both route
/// through this check.
///
/// # Errors
///
/// See [`BuildError`].
pub fn validate_instance(
    initial: &[Point],
    pattern: &[Point],
    config: &WorldConfig,
) -> Result<(), BuildError> {
    let n = initial.len();
    if n < 7 {
        return Err(BuildError::TooFewRobots(n));
    }
    if n != pattern.len() {
        return Err(BuildError::SizeMismatch { robots: n, pattern: pattern.len() });
    }
    let tol = config.tol;
    if Configuration::new(initial.to_vec()).has_multiplicity(&tol) {
        return Err(BuildError::InitialMultiplicity);
    }
    let pat = Configuration::new(pattern.to_vec());
    let groups = pat.multiplicity_groups(&tol);
    if groups.len() == 1 {
        return Err(BuildError::GatheringUnsupported);
    }
    if pat.has_multiplicity(&tol) && !config.multiplicity_detection {
        return Err(BuildError::NeedsMultiplicityDetection);
    }
    Ok(())
}

/// Builder for a pattern-formation simulation running [`FormPattern`].
///
/// # Example
///
/// ```
/// use apf_core::SimulationBuilder;
/// use apf_scheduler::SchedulerKind;
///
/// let world = SimulationBuilder::new(
///     apf_patterns::asymmetric_configuration(8, 1),
///     apf_patterns::random_pattern(8, 2),
/// )
/// .scheduler(SchedulerKind::Async)
/// .seed(99)
/// .build()
/// .unwrap();
/// assert_eq!(world.positions().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    initial: Vec<Point>,
    pattern: Vec<Point>,
    scheduler: SchedulerKind,
    seed: u64,
    config: WorldConfig,
}

impl SimulationBuilder {
    /// Starts a builder from an initial configuration and a target pattern.
    pub fn new(initial: Vec<Point>, pattern: Vec<Point>) -> Self {
        SimulationBuilder {
            initial,
            pattern,
            scheduler: SchedulerKind::Async,
            seed: 0,
            config: WorldConfig::default(),
        }
    }

    /// Chooses the scheduler (default: ASYNC).
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Seeds both the robots' randomness and the scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the minimum per-Move progress `δ`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Enables multiplicity detection (required for multiplicity patterns).
    pub fn multiplicity_detection(mut self, on: bool) -> Self {
        self.config.multiplicity_detection = on;
        self
    }

    /// Whether robots get random (rotated/scaled/mirrored) local frames.
    pub fn randomize_frames(mut self, on: bool) -> Self {
        self.config.randomize_frames = on;
        self
    }

    /// Records every configuration for rendering.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.config.record_trace = on;
        self
    }

    /// Overrides the geometric tolerance.
    pub fn tol(mut self, tol: Tol) -> Self {
        self.config.tol = tol;
        self
    }

    /// Validates the instance and builds the [`World`].
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build(self) -> Result<World, BuildError> {
        validate_instance(&self.initial, &self.pattern, &self.config)?;
        Ok(World::new(
            self.initial,
            self.pattern,
            Box::new(FormPattern::new()),
            self.scheduler.build(self.seed.wrapping_add(0x5EED)),
            self.config,
            self.seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_small_instances() {
        let e = SimulationBuilder::new(
            apf_patterns::asymmetric_configuration(5, 1),
            apf_patterns::random_pattern(5, 2),
        )
        .build()
        .unwrap_err();
        assert_eq!(e, BuildError::TooFewRobots(5));
    }

    #[test]
    fn rejects_size_mismatch() {
        let e = SimulationBuilder::new(
            apf_patterns::asymmetric_configuration(8, 1),
            apf_patterns::random_pattern(7, 2),
        )
        .build()
        .unwrap_err();
        assert!(matches!(e, BuildError::SizeMismatch { .. }));
    }

    #[test]
    fn rejects_initial_multiplicity() {
        let mut init = apf_patterns::asymmetric_configuration(8, 1);
        init[1] = init[0];
        let e =
            SimulationBuilder::new(init, apf_patterns::random_pattern(8, 2)).build().unwrap_err();
        assert_eq!(e, BuildError::InitialMultiplicity);
    }

    #[test]
    fn rejects_multiplicity_pattern_without_detection() {
        let pat = apf_patterns::pattern_with_multiplicity(8, 6, 3);
        let e = SimulationBuilder::new(apf_patterns::asymmetric_configuration(8, 1), pat.clone())
            .build()
            .unwrap_err();
        assert_eq!(e, BuildError::NeedsMultiplicityDetection);
        // With detection it builds.
        assert!(SimulationBuilder::new(apf_patterns::asymmetric_configuration(8, 1), pat)
            .multiplicity_detection(true)
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_gathering() {
        let pat = vec![Point::new(1.0, 1.0); 8];
        let e = SimulationBuilder::new(apf_patterns::asymmetric_configuration(8, 1), pat)
            .multiplicity_detection(true)
            .build()
            .unwrap_err();
        assert_eq!(e, BuildError::GatheringUnsupported);
    }

    #[test]
    fn builds_valid_instance() {
        let w = SimulationBuilder::new(
            apf_patterns::asymmetric_configuration(9, 4),
            apf_patterns::random_pattern(9, 5),
        )
        .scheduler(SchedulerKind::Fsync)
        .build()
        .unwrap();
        assert_eq!(w.positions().len(), 9);
    }
}
