//! The multiplicity extension (Section 5, Appendix C).
//!
//! With multiplicity detection, the algorithm forms patterns that contain
//! multiplicity points: robots sharing a destination are simply allowed to
//! land on the same spot (the phase-3 blocking rule exempts robots standing
//! exactly on one's own destination).
//!
//! The one case needing surgery is a pattern point at `c(F)` itself (with
//! any count `m ≥ 1`): no robot can be *placed* at the center without
//! destroying every center-anchored predicate. Following Appendix C, the
//! algorithm first forms `F̃` — `F` with the center points relocated to
//! `g_F`, the midpoint between `c(F)` and the off-center point with maximal
//! view — and finishes with a *gather step*: when the `m` closest robots
//! stand on a single half-line from the center and everyone else forms
//! `F − {(c(F), m)}`, those `m` robots walk to the center.

use crate::analysis::Analysis;
use apf_geometry::symmetry::ViewAnalysis;
use apf_geometry::{are_similar, Configuration, Path, Point};
use apf_sim::{ComputeError, Decision};

/// What the multiplicity preprocessing decided.
#[derive(Debug)]
pub enum MultiStep {
    /// No center point in `F`: continue with the (possibly multiset)
    /// pattern as-is.
    Proceed,
    /// `F` had center points: continue with the transformed pattern `F̃`
    /// (already swapped into the analysis).
    Transformed,
    /// The gather condition holds: this is the observer's decision.
    Gather(Decision),
}

/// Applies the Appendix C transformation when `F` contains `c(F)`.
///
/// # Errors
///
/// * the pattern has multiplicity but the snapshot does not expose
///   multiplicities;
/// * the pattern is a single multiplicity point (the Gathering problem —
///   out of scope, as in the paper).
pub fn preprocess(a: &mut Analysis) -> Result<MultiStep, ComputeError> {
    let tol = a.tol;
    let pat_cfg = Configuration::new(a.pattern.clone());
    let groups = pat_cfg.multiplicity_groups(&tol);
    let has_multiplicity = groups.iter().any(|(_, m)| m.len() > 1);
    if has_multiplicity && !a.multiplicity_detection {
        return Err(ComputeError::new(
            "pattern contains multiplicity points but multiplicity detection is off",
        ));
    }
    if groups.len() == 1 {
        return Err(ComputeError::new(
            "pattern is a single multiplicity point: that is the Gathering problem, out of scope",
        ));
    }
    // Center group: pattern points at c(F) (the normalized origin).
    let center_group: Vec<usize> = groups
        .iter()
        .find(|(rep, _)| rep.approx_eq(Point::ORIGIN, &tol))
        .map(|(_, members)| members.clone())
        .unwrap_or_default();
    if center_group.is_empty() {
        return Ok(MultiStep::Proceed);
    }
    let m = center_group.len();

    // g_F: on the half-line toward the off-center max-view point, at half
    // the smallest off-center pattern radius. (The paper uses the midpoint
    // of [c(F), f_max]; we halve the *innermost* radius instead so the
    // relocated group is guaranteed to be the m closest robots, which is
    // what the gather-step detection keys on.)
    let va = ViewAnalysis::compute(&pat_cfg, Point::ORIGIN, &tol);
    let fmax = (0..a.pattern.len())
        .filter(|&i| !tol.is_zero(a.pattern[i].dist(Point::ORIGIN)))
        .max_by(|&x, &y| va.view(x).cmp(va.view(y)))
        // apf-lint: allow(panic-policy) — multiplicity preprocessing requires |F̃| ≥ 2 points
        .expect("more than one distinct pattern location");
    let r_min = a
        .pattern
        .iter()
        .map(|p| p.dist(Point::ORIGIN))
        .filter(|&r| !tol.is_zero(r))
        .fold(f64::INFINITY, f64::min);
    // apf-lint: allow(panic-policy) — fmax was filtered to off-center points just above
    let dir = (a.pattern[fmax] - Point::ORIGIN).normalized().expect("f_max is off-center");
    let g_f = Point::ORIGIN + dir * (r_min / 2.0);

    // Gather condition: the m closest robots are on one half-line from the
    // center (or already at it) and the rest form F − {(c, m)}.
    if let Some(d) = gather_step(a, m, &center_group) {
        return Ok(MultiStep::Gather(d));
    }

    // Swap in F̃.
    let mut f_tilde = a.pattern.clone();
    for &i in &center_group {
        f_tilde[i] = g_f;
    }
    a.override_pattern(f_tilde);
    Ok(MultiStep::Transformed)
}

/// Checks the gather condition and, when it holds, returns the observer's
/// decision (inner robots walk to the center, everyone else stays).
fn gather_step(a: &Analysis, m: usize, center_group: &[usize]) -> Option<Decision> {
    let tol = a.tol;
    let n = a.n();
    if m >= n {
        return None;
    }
    // The m closest robots.
    let mut by_radius: Vec<usize> = (0..n).collect();
    by_radius.sort_by(|&x, &y| a.radius(x).total_cmp(&a.radius(y)));
    let inner = &by_radius[..m];
    let rest = &by_radius[m..];
    // The boundary must be unambiguous.
    if m > 0 && !tol.lt(a.radius(inner[m - 1]), a.radius(rest[0])) {
        return None;
    }
    // Inner robots on one half-line from the origin (robots at the origin
    // are trivially on it).
    let mut angle: Option<f64> = None;
    for &i in inner {
        let p = a.polar(i);
        if tol.is_zero(p.radius) {
            continue;
        }
        match angle {
            None => angle = Some(p.angle),
            Some(ang) => {
                if apf_geometry::angle::angle_dist(ang, p.angle) > tol.angle_eps.max(1e-6) {
                    return None;
                }
            }
        }
    }
    // Rest forms F minus the center points.
    let rest_pts: Vec<Point> = rest.iter().map(|&i| a.config.point(i)).collect();
    let f_rest: Vec<Point> = a
        .pattern
        .iter()
        .enumerate()
        .filter(|&(i, _)| !center_group.contains(&i))
        .map(|(_, &p)| p)
        .collect();
    if !are_similar(&rest_pts, &f_rest, &tol) {
        return None;
    }
    // Gather: inner robots not yet at the center walk straight to it.
    if inner.contains(&a.me) && !tol.is_zero(a.radius(a.me)) {
        let p = Path::straight(a.my_pos(), Point::ORIGIN);
        return Some(Decision::Move(a.denormalize_path(&p)));
    }
    Some(Decision::Stay)
}
