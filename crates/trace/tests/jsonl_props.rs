//! Property tests of the hand-rolled JSONL codec: encode → decode must
//! round-trip bit-identically over arbitrary event sequences, including the
//! float edge cases (`-0.0`, subnormals, huge magnitudes, shortest-format
//! boundaries) the codec's `{}` formatting is trusted to handle.

use apf_trace::{parse_line, to_json_line, PhaseKind, TraceEvent, TraceSummary};
use proptest::prelude::*;

/// Finite f64 from raw bits, with non-finite draws folded to interesting
/// finite values instead of rejected (keeps the sample budget intact).
fn finite(bits: u64) -> f64 {
    let x = f64::from_bits(bits);
    if x.is_finite() {
        x
    } else {
        // Map the NaN/inf space onto boundary cases worth testing.
        match bits % 5 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE,
            3 => 5e-324, // smallest positive subnormal
            _ => f64::MAX,
        }
    }
}

fn phase(selector: u8) -> PhaseKind {
    PhaseKind::ALL[selector as usize % PhaseKind::COUNT]
}

/// Decode one arbitrary event from primitive draws. `variant` picks the
/// event kind; the other fields are reinterpreted per variant so every draw
/// yields a valid event. `robot_cap` bounds robot indices (and the
/// `TrialStart` robot count): [`TraceSummary`] allocates per-robot state
/// indexed by robot id, so streams destined for replay must keep ids small,
/// while pure codec tests can exercise the full `u32` range.
fn event(variant: u8, a: u64, b: u64, c: u64, flags: u8, robot_cap: u32) -> TraceEvent {
    let step = a;
    let robot = (b % u64::from(robot_cap)) as u32;
    let x = finite(b);
    let y = finite(c);
    let f1 = flags & 1 != 0;
    let f2 = flags & 2 != 0;
    match variant % 11 {
        0 => TraceEvent::TrialStart { robots: robot, seed: c },
        1 => TraceEvent::StepBegin { step, looks: robot, moves: (c % 1000) as u32 },
        2 => TraceEvent::Look { step, robot },
        3 => TraceEvent::CoinFlip { step, robot, heads: f1 },
        4 => TraceEvent::RandomWord { step, robot, bits: (c % 4096) as u32 },
        5 => TraceEvent::Decide { step, robot, phase: phase(flags), moved: f1, path_len: y },
        6 => TraceEvent::PhaseChange {
            step,
            robot,
            from: phase(flags),
            to: phase(flags.wrapping_add(flags >> 4)),
        },
        7 => TraceEvent::MoveSlice {
            step,
            robot,
            advanced: x,
            traveled: y,
            length: finite(a ^ c),
            end_phase: f1,
            arrived: f2,
        },
        8 => TraceEvent::Interrupt { step, robot, traveled: x, length: y },
        9 => TraceEvent::Formed { step },
        _ => TraceEvent::TrialEnd { step, formed: f1, cycles: b, bits: c },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn single_events_round_trip_bit_identically(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        flags in any::<u8>(),
    ) {
        let ev = event(variant, a, b, c, flags, u32::MAX);
        let line = to_json_line(&ev);
        prop_assert!(!line.contains('\n'), "single line: {line}");
        let back = match parse_line(&line) {
            Ok(e) => e,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("{line}: {e}"),
            )),
        };
        // Value equality (note -0.0 == 0.0 under PartialEq)...
        prop_assert_eq!(back, ev);
        // ...and byte equality of the re-serialization, which catches
        // anything PartialEq cannot see (e.g. a lost -0.0 sign).
        prop_assert_eq!(to_json_line(&back), line);
    }

    #[test]
    fn event_sequences_survive_the_line_oriented_path(
        seed in any::<u64>(),
        draws in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()),
            0..40,
        ),
    ) {
        let events: Vec<TraceEvent> = draws
            .iter()
            .map(|&(v, a, b, f)| event(v, a, b, a ^ b ^ seed, f, 64))
            .collect();
        let text: String =
            events.iter().map(|e| to_json_line(e) + "\n").collect();
        let parsed: Vec<TraceEvent> = text
            .lines()
            .map(|l| parse_line(l).expect("emitted lines must parse"))
            .collect();
        prop_assert_eq!(parsed.len(), events.len());
        for (p, e) in parsed.iter().zip(events.iter()) {
            prop_assert_eq!(to_json_line(p), to_json_line(e));
        }
        // The inspector's line-oriented entry point must accept every
        // emitted stream without codec errors (legality violations are
        // fine — these are arbitrary sequences, not legal executions).
        let summary = TraceSummary::from_lines(text.lines());
        prop_assert!(summary.is_ok());
    }

    #[test]
    fn whitespace_padding_is_tolerated(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        flags in any::<u8>(),
    ) {
        let ev = event(variant, a, b, a.wrapping_mul(b | 1), flags, u32::MAX);
        let line = to_json_line(&ev);
        // Re-space the separators the way a hand-edited trace might.
        let padded = line
            .replace("\",\"", "\" , \"")
            .replace(":", ": ");
        let back = match parse_line(&padded) {
            Ok(e) => e,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("{padded}: {e}"),
            )),
        };
        prop_assert_eq!(to_json_line(&back), line);
    }
}
