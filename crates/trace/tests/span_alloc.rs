//! Disabled span profiling must be free: with no [`SpanSink`] installed,
//! entering and dropping spans performs **exactly zero** heap allocations —
//! the enter path is one `const` thread-local `Cell` read.
//!
//! This file holds exactly one test because it swaps the global allocator
//! for a counting wrapper — other tests in the same binary would race the
//! counters.

// Wrapping the system allocator is the one place the workspace needs
// `unsafe`: GlobalAlloc's methods are unsafe by signature. The wrapper only
// counts and delegates.
#![allow(unsafe_code)]

use apf_trace::span::{self, SpanLabel, VecSpanSink};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`, exactly.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_spans_allocate_exactly_zero() {
    assert!(!span::is_active());

    // Warm the thread-locals outside the measured window. Both are `const`
    // initialized so this should itself be free, but the claim under test
    // is about the steady-state hot path.
    drop(span::enter(SpanLabel::Trial));

    let disabled = allocations_during(|| {
        for _ in 0..10_000 {
            let _t = span::enter(SpanLabel::Trial);
            let _l = span::enter_robot(SpanLabel::Look, 3);
            let _k = span::enter(SpanLabel::Shifted);
        }
    });
    // Not "few": exactly zero, every iteration, with no min-of-N noise
    // tolerance — the disabled path must never touch the allocator.
    assert_eq!(disabled, 0, "disabled span enter/drop must not allocate");

    // Sanity: the machinery does record when a sink is installed (and the
    // enabled path is *allowed* to allocate — Vec growth, boxed sink).
    let handle: Arc<Mutex<VecSpanSink>> = Arc::default();
    assert!(span::install(Box::new(Arc::clone(&handle))).is_none());
    {
        let _t = span::enter(SpanLabel::Trial);
        let _k = span::enter(SpanLabel::Shifted);
    }
    drop(span::take());
    let sink = handle.lock().unwrap();
    assert_eq!(sink.spans.len(), 2, "enabled path records spans");
    assert_eq!(sink.spans[0].stack.folded(), "trial;shifted");
}
