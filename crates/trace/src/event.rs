//! The typed trace vocabulary: algorithm phases and engine events.

/// Which part of the algorithm produced a decision.
///
/// `ψ = {ψ_RSB, ψ_DPF}` is the paper's decomposition; the variants here are
/// one level finer so traces can show the election, the shift protocol, and
/// the three deterministic formation phases separately. Algorithms that do
/// not tag their decisions fall into [`PhaseKind::Untagged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum PhaseKind {
    /// The algorithm did not tag this cycle (default `compute_tagged`).
    #[default]
    Untagged = 0,
    /// The configuration is similar to the pattern: terminal stay.
    Terminal,
    /// Multiplicity extension: the final gather step (Appendix C).
    Gather,
    /// The pattern is one agreed move away from complete.
    Completion,
    /// `ψ_RSB|Q`: probabilistic election among closest members (the
    /// one-coin-per-cycle phase).
    RsbElection,
    /// `ψ_RSB|Q`: the elected robot creates the 1/8-shifted regular set.
    RsbElected,
    /// `ψ_RSB|Q`: shift-protocol stages (tune ε, descend, announce).
    RsbShift,
    /// `ψ_RSB|Qc`: deterministic maximal-view descent (no regular set).
    RsbAsymmetric,
    /// `ψ_DPF` Phase 1: establish the oriented coordinate system `Z`.
    DpfFrame,
    /// `ψ_DPF` Phase 2 (and its pre-phases): populate the target circles.
    DpfPopulate,
    /// `ψ_DPF` Phase 3: rotate robots into their final positions.
    DpfRotate,
    /// `ψ_DPF` ran out of work for this robot this cycle (settled wait).
    DpfIdle,
}

impl PhaseKind {
    /// Number of variants (array-index domain).
    pub const COUNT: usize = 12;

    /// Every variant, in index order.
    pub const ALL: [PhaseKind; PhaseKind::COUNT] = [
        PhaseKind::Untagged,
        PhaseKind::Terminal,
        PhaseKind::Gather,
        PhaseKind::Completion,
        PhaseKind::RsbElection,
        PhaseKind::RsbElected,
        PhaseKind::RsbShift,
        PhaseKind::RsbAsymmetric,
        PhaseKind::DpfFrame,
        PhaseKind::DpfPopulate,
        PhaseKind::DpfRotate,
        PhaseKind::DpfIdle,
    ];

    /// Dense array index of this variant.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable label (used by the JSONL codec).
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Untagged => "untagged",
            PhaseKind::Terminal => "terminal",
            PhaseKind::Gather => "gather",
            PhaseKind::Completion => "completion",
            PhaseKind::RsbElection => "rsb-election",
            PhaseKind::RsbElected => "rsb-elected",
            PhaseKind::RsbShift => "rsb-shift",
            PhaseKind::RsbAsymmetric => "rsb-asym",
            PhaseKind::DpfFrame => "dpf-frame",
            PhaseKind::DpfPopulate => "dpf-populate",
            PhaseKind::DpfRotate => "dpf-rotate",
            PhaseKind::DpfIdle => "dpf-idle",
        }
    }

    /// Inverse of [`PhaseKind::label`].
    pub fn from_label(label: &str) -> Option<PhaseKind> {
        PhaseKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether this is a `ψ_RSB` sub-phase.
    pub fn is_rsb(self) -> bool {
        matches!(
            self,
            PhaseKind::RsbElection
                | PhaseKind::RsbElected
                | PhaseKind::RsbShift
                | PhaseKind::RsbAsymmetric
        )
    }

    /// Whether this is a `ψ_DPF` sub-phase.
    pub fn is_dpf(self) -> bool {
        matches!(
            self,
            PhaseKind::DpfFrame
                | PhaseKind::DpfPopulate
                | PhaseKind::DpfRotate
                | PhaseKind::DpfIdle
        )
    }
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured trace event.
///
/// Events are `Copy` and carry only primitives, so a *disabled* trace never
/// allocates and an *enabled* one costs a handful of stores per event.
/// `step` is the engine step that produced the event; `robot` is a stable
/// simulator-side index (robots are anonymous to each other, not to the
/// observer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A trial begins.
    TrialStart {
        /// Number of robots.
        robots: u32,
        /// World seed (robot randomness + frames; the scheduler derives its
        /// own seed from it).
        seed: u64,
    },
    /// One engine step (one scheduler batch) begins.
    StepBegin {
        /// Engine step counter (1-based, matches `Metrics::steps`).
        step: u64,
        /// Look actions in this batch.
        looks: u32,
        /// Move actions in this batch.
        moves: u32,
    },
    /// A robot takes a snapshot (the Look of an LCM cycle).
    Look {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
    },
    /// The algorithm drew one fair coin through its `BitSource`.
    CoinFlip {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// The flip's outcome.
        heads: bool,
    },
    /// The algorithm drew an `n`-bit word through its `BitSource`.
    RandomWord {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// Number of bits drawn.
        bits: u32,
    },
    /// The Compute of an LCM cycle finished.
    Decide {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// Which algorithm phase produced the decision.
        phase: PhaseKind,
        /// Whether a pending move was created (a sub-tolerance path counts
        /// as a stay, mirroring the engine).
        moved: bool,
        /// Global-frame length of the computed path (0 for stays).
        path_len: f64,
    },
    /// A robot's tagged phase changed between consecutive cycles.
    PhaseChange {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// Previous phase.
        from: PhaseKind,
        /// New phase.
        to: PhaseKind,
    },
    /// The adversary advanced a robot along its pending path.
    MoveSlice {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// Distance actually traveled in this slice (after clamping and the
        /// minimum-progress rule).
        advanced: f64,
        /// Cumulative distance traveled along the path.
        traveled: f64,
        /// Total path length.
        length: f64,
        /// Whether the adversary ended the Move phase here.
        end_phase: bool,
        /// Whether the destination was reached.
        arrived: bool,
    },
    /// The adversary ended a Move phase before the destination (traveled
    /// ≥ δ but < full path) — the robot stays mid-path, observable there.
    Interrupt {
        /// Engine step.
        step: u64,
        /// Robot index.
        robot: u32,
        /// Distance traveled when interrupted.
        traveled: f64,
        /// Total path length.
        length: f64,
    },
    /// The success condition (similar + all idle) first became true.
    Formed {
        /// Engine step.
        step: u64,
    },
    /// The trial ended.
    TrialEnd {
        /// Final engine step count.
        step: u64,
        /// Whether the pattern was formed.
        formed: bool,
        /// Total LCM cycles (Look events).
        cycles: u64,
        /// Total random bits drawn.
        bits: u64,
    },
}

impl TraceEvent {
    /// The engine step this event belongs to (0 for [`TraceEvent::TrialStart`]).
    pub fn step(&self) -> u64 {
        match *self {
            TraceEvent::TrialStart { .. } => 0,
            TraceEvent::StepBegin { step, .. }
            | TraceEvent::Look { step, .. }
            | TraceEvent::CoinFlip { step, .. }
            | TraceEvent::RandomWord { step, .. }
            | TraceEvent::Decide { step, .. }
            | TraceEvent::PhaseChange { step, .. }
            | TraceEvent::MoveSlice { step, .. }
            | TraceEvent::Interrupt { step, .. }
            | TraceEvent::Formed { step }
            | TraceEvent::TrialEnd { step, .. } => step,
        }
    }

    /// The robot this event concerns, if it is robot-scoped.
    pub fn robot(&self) -> Option<u32> {
        match *self {
            TraceEvent::Look { robot, .. }
            | TraceEvent::CoinFlip { robot, .. }
            | TraceEvent::RandomWord { robot, .. }
            | TraceEvent::Decide { robot, .. }
            | TraceEvent::PhaseChange { robot, .. }
            | TraceEvent::MoveSlice { robot, .. }
            | TraceEvent::Interrupt { robot, .. } => Some(robot),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in PhaseKind::ALL {
            assert_eq!(PhaseKind::from_label(k.label()), Some(k), "{k:?}");
        }
        assert_eq!(PhaseKind::from_label("nope"), None);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, k) in PhaseKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn rsb_dpf_split_is_a_partition_of_psi() {
        let rsb = PhaseKind::ALL.iter().filter(|k| k.is_rsb()).count();
        let dpf = PhaseKind::ALL.iter().filter(|k| k.is_dpf()).count();
        assert_eq!(rsb, 4);
        assert_eq!(dpf, 4);
        assert!(!PhaseKind::Untagged.is_rsb() && !PhaseKind::Untagged.is_dpf());
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::Decide {
            step: 7,
            robot: 3,
            phase: PhaseKind::RsbElection,
            moved: true,
            path_len: 0.5,
        };
        assert_eq!(e.step(), 7);
        assert_eq!(e.robot(), Some(3));
        assert_eq!(TraceEvent::Formed { step: 9 }.robot(), None);
        assert_eq!(TraceEvent::TrialStart { robots: 8, seed: 1 }.step(), 0);
    }
}
