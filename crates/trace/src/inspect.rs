//! Trace inspection: replay an event stream, validate it against the
//! engine's legality rules and the paper's randomness claim, and summarize
//! it per robot and per phase.

use crate::event::{PhaseKind, TraceEvent};

/// Aggregates for one [`PhaseKind`] across a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTally {
    /// LCM cycles whose Compute was tagged with this phase.
    pub cycles: u64,
    /// Random bits drawn during those cycles.
    pub bits: u64,
    /// Cycles that produced a pending move.
    pub moves: u64,
    /// Sum of computed path lengths.
    pub path_len: f64,
}

impl PhaseTally {
    /// Bits per cycle within this phase (0.0 when no cycles ran).
    pub fn bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bits as f64 / self.cycles as f64
        }
    }
}

/// Aggregates for one robot across a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RobotTally {
    /// Look events (= LCM cycles observed for this robot).
    pub looks: u64,
    /// Compute decisions.
    pub decides: u64,
    /// Decisions that produced a pending move.
    pub moves: u64,
    /// Adversary move slices applied.
    pub slices: u64,
    /// Moves the adversary ended before the destination.
    pub interrupts: u64,
    /// Random bits drawn.
    pub bits: u64,
    /// Total distance traveled.
    pub distance: f64,
    /// Last tagged phase seen for this robot.
    pub last_phase: PhaseKind,
}

/// What the inspector knows about a robot's position in the LCM cycle.
/// `Unknown` is the entry state for windowed traces (e.g. a [`RingSink`]
/// capture that starts mid-run) — no legality checks fire until the
/// robot's first Look re-synchronizes it.
///
/// [`RingSink`]: crate::sink::RingSink
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobotState {
    Unknown,
    Idle,
    Computing,
    Moving,
}

/// A replayed, validated view of a trace event stream.
///
/// Built by streaming events through [`TraceSummary::from_events`] (or the
/// line-oriented [`TraceSummary::from_lines`]): the inspector simulates each
/// robot's Look→Compute→Move legality, attributes every random bit to the
/// cycle (and therefore phase) that drew it, and cross-checks the stream's
/// own `trial_end` totals. Violations are collected, not panicked on — a
/// trace is evidence, and broken evidence is the interesting kind.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Robot count from `trial_start` (or max robot index + 1 if windowed).
    pub robots: u32,
    /// World seed, when the stream includes `trial_start`.
    pub seed: Option<u64>,
    /// Events replayed.
    pub events: u64,
    /// Highest engine step seen.
    pub last_step: u64,
    /// Whether the stream included `trial_start` (false for windowed
    /// captures; legality checks are relaxed accordingly).
    pub has_start: bool,
    /// Whether the stream included `trial_end`.
    pub complete: bool,
    /// Outcome from `trial_end`.
    pub formed: Option<bool>,
    /// Step at which `formed` was first emitted.
    pub formed_step: Option<u64>,
    /// Total Look events (= LCM cycles).
    pub cycles: u64,
    /// Total random bits drawn.
    pub bits: u64,
    /// Total distance traveled (sum of move-slice advances).
    pub distance: f64,
    /// Total adversary interruptions.
    pub interrupts: u64,
    /// Most bits drawn in any single election cycle (the paper claims ≤ 1).
    pub max_election_bits: u64,
    /// Per-phase aggregates, indexed by [`PhaseKind::index`].
    pub per_phase: [PhaseTally; PhaseKind::COUNT],
    /// Per-robot aggregates.
    pub per_robot: Vec<RobotTally>,
    /// Legality/consistency violations, in discovery order (capped).
    pub violations: Vec<String>,
    /// Violations beyond the cap.
    pub violations_dropped: u64,
}

const MAX_VIOLATIONS: usize = 32;

impl TraceSummary {
    /// Replays a stream of events.
    pub fn from_events<'a, I>(events: I) -> TraceSummary
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let mut r = Replayer::default();
        for e in events {
            r.feed(e);
        }
        r.finish()
    }

    /// Replays JSONL lines, returning the line number (1-based) and error
    /// for the first malformed line. Blank lines are skipped.
    pub fn from_lines<'a, I>(lines: I) -> Result<TraceSummary, (usize, crate::jsonl::ParseError)>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut r = Replayer::default();
        for (i, line) in lines.into_iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = crate::jsonl::parse_line(line).map_err(|e| (i + 1, e))?;
            r.feed(&event);
        }
        Ok(r.finish())
    }

    /// Whether the replay found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Bits per cycle over the whole trace (0.0 when no cycles ran).
    pub fn bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bits as f64 / self.cycles as f64
        }
    }

    /// Renders a human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "trace summary");
        let _ = writeln!(
            out,
            "  robots {:>5}   seed {}   events {}   steps {}",
            self.robots,
            self.seed.map_or_else(|| "-".to_string(), |s| s.to_string()),
            self.events,
            self.last_step,
        );
        let outcome = match (self.complete, self.formed) {
            (true, Some(true)) => "formed".to_string(),
            (true, _) => "not formed".to_string(),
            (false, _) => "incomplete (no trial_end)".to_string(),
        };
        let formed_at = self.formed_step.map_or_else(String::new, |s| format!(" at step {s}"));
        let _ = writeln!(out, "  outcome: {outcome}{formed_at}");
        let _ = writeln!(
            out,
            "  cycles {}   bits {}   bits/cycle {:.4}   distance {:.3}   interrupts {}",
            self.cycles,
            self.bits,
            self.bits_per_cycle(),
            self.distance,
            self.interrupts,
        );
        let elections = self.per_phase[PhaseKind::RsbElection.index()].cycles;
        if elections > 0 {
            let verdict = if self.max_election_bits <= 1 { "ok" } else { "VIOLATED" };
            let _ = writeln!(
                out,
                "  election cycles {}   max bits in one election cycle {}   (paper claim <= 1: {})",
                elections, self.max_election_bits, verdict,
            );
        }
        let _ = writeln!(out, "  per-phase:");
        let _ = writeln!(
            out,
            "    {:<14} {:>9} {:>10} {:>9} {:>10} {:>11}",
            "phase", "cycles", "bits", "moves", "bits/cyc", "path-len"
        );
        for kind in PhaseKind::ALL {
            let t = self.per_phase[kind.index()];
            if t.cycles == 0 && t.bits == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "    {:<14} {:>9} {:>10} {:>9} {:>10.4} {:>11.3}",
                kind.label(),
                t.cycles,
                t.bits,
                t.moves,
                t.bits_per_cycle(),
                t.path_len,
            );
        }
        let _ = writeln!(out, "  per-robot:");
        let _ = writeln!(
            out,
            "    {:<6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9} {:>13}",
            "robot", "looks", "moves", "slices", "intr", "bits", "dist", "last-phase"
        );
        for (i, t) in self.per_robot.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {:<6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>9.3} {:>13}",
                i, t.looks, t.moves, t.slices, t.interrupts, t.bits, t.distance, t.last_phase,
            );
        }
        if self.is_clean() {
            let _ = writeln!(out, "  violations: none");
        } else {
            let total = self.violations.len() as u64 + self.violations_dropped;
            let _ = writeln!(out, "  violations: {total}");
            for v in &self.violations {
                let _ = writeln!(out, "    - {v}");
            }
            if self.violations_dropped > 0 {
                let _ = writeln!(out, "    - ... and {} more", self.violations_dropped);
            }
        }
        out
    }
}

/// One-line human description of an event, for `--replay` output.
pub fn describe(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::TrialStart { robots, seed } => {
            format!("trial start: {robots} robots, seed {seed}")
        }
        TraceEvent::StepBegin { step, looks, moves } => {
            format!("[{step:>6}] step begin ({looks} looks, {moves} moves)")
        }
        TraceEvent::Look { step, robot } => format!("[{step:>6}] r{robot} look"),
        TraceEvent::CoinFlip { step, robot, heads } => {
            format!("[{step:>6}] r{robot} coin -> {}", if heads { "heads" } else { "tails" })
        }
        TraceEvent::RandomWord { step, robot, bits } => {
            format!("[{step:>6}] r{robot} drew {bits}-bit word")
        }
        TraceEvent::Decide { step, robot, phase, moved, path_len } => {
            if moved {
                format!("[{step:>6}] r{robot} decide [{phase}] move len {path_len:.4}")
            } else {
                format!("[{step:>6}] r{robot} decide [{phase}] stay")
            }
        }
        TraceEvent::PhaseChange { step, robot, from, to } => {
            format!("[{step:>6}] r{robot} phase {from} -> {to}")
        }
        TraceEvent::MoveSlice { step, robot, advanced, traveled, length, end_phase, arrived } => {
            let tail = if arrived {
                " (arrived)"
            } else if end_phase {
                " (phase ended)"
            } else {
                ""
            };
            format!("[{step:>6}] r{robot} move +{advanced:.4} ({traveled:.4}/{length:.4}){tail}")
        }
        TraceEvent::Interrupt { step, robot, traveled, length } => {
            format!("[{step:>6}] r{robot} INTERRUPTED at {traveled:.4}/{length:.4}")
        }
        TraceEvent::Formed { step } => format!("[{step:>6}] pattern formed"),
        TraceEvent::TrialEnd { step, formed, cycles, bits } => format!(
            "trial end at step {step}: {} ({cycles} cycles, {bits} bits)",
            if formed { "formed" } else { "not formed" }
        ),
    }
}

/// Streaming replay state.
#[derive(Debug, Default)]
struct Replayer {
    summary: TraceSummary,
    states: Vec<RobotState>,
    /// Bits drawn in each robot's current (open) Compute.
    open_bits: Vec<u64>,
    ended: bool,
}

impl Replayer {
    fn violate(&mut self, msg: String) {
        if self.summary.violations.len() < MAX_VIOLATIONS {
            self.summary.violations.push(msg);
        } else {
            self.summary.violations_dropped += 1;
        }
    }

    fn robot(&mut self, robot: u32) -> usize {
        let idx = robot as usize;
        if idx >= self.states.len() {
            self.states.resize(idx + 1, RobotState::Unknown);
            self.open_bits.resize(idx + 1, 0);
            self.summary.per_robot.resize(idx + 1, RobotTally::default());
        }
        idx
    }

    fn feed(&mut self, event: &TraceEvent) {
        self.summary.events += 1;
        let step = event.step();
        if step > 0 {
            if step < self.summary.last_step {
                self.violate(format!(
                    "step went backwards: {} after {}",
                    step, self.summary.last_step
                ));
            }
            self.summary.last_step = self.summary.last_step.max(step);
        }
        if self.ended && !matches!(event, TraceEvent::TrialEnd { .. }) {
            self.violate(format!("event after trial_end at step {step}"));
        }
        if let Some(r) = event.robot() {
            if self.summary.has_start && r >= self.summary.robots {
                self.violate(format!("robot index {r} out of range (n = {})", self.summary.robots));
            }
        }
        match *event {
            TraceEvent::TrialStart { robots, seed } => {
                if self.summary.has_start || self.summary.events > 1 {
                    self.violate("trial_start not at stream head".to_string());
                }
                self.summary.has_start = true;
                self.summary.robots = robots;
                self.summary.seed = Some(seed);
                self.states = vec![RobotState::Idle; robots as usize];
                self.open_bits = vec![0; robots as usize];
                self.summary.per_robot = vec![RobotTally::default(); robots as usize];
            }
            TraceEvent::StepBegin { .. } => {}
            TraceEvent::Look { robot, step } => {
                let i = self.robot(robot);
                match self.states[i] {
                    RobotState::Idle | RobotState::Unknown => {}
                    s => self.violate(format!("r{robot} look while {s:?} at step {step}")),
                }
                self.states[i] = RobotState::Computing;
                self.open_bits[i] = 0;
                self.summary.cycles += 1;
                self.summary.per_robot[i].looks += 1;
            }
            TraceEvent::CoinFlip { robot, step, .. } => {
                self.draw(robot, step, 1);
            }
            TraceEvent::RandomWord { robot, step, bits } => {
                self.draw(robot, step, u64::from(bits));
            }
            TraceEvent::Decide { robot, step, phase, moved, path_len } => {
                let i = self.robot(robot);
                match self.states[i] {
                    RobotState::Computing | RobotState::Unknown => {}
                    s => self.violate(format!("r{robot} decide while {s:?} at step {step}")),
                }
                let drew = self.open_bits[i];
                self.open_bits[i] = 0;
                self.states[i] = if moved { RobotState::Moving } else { RobotState::Idle };
                let tally = &mut self.summary.per_phase[phase.index()];
                tally.cycles += 1;
                tally.bits += drew;
                tally.path_len += path_len;
                if moved {
                    tally.moves += 1;
                    self.summary.per_robot[i].moves += 1;
                }
                if phase == PhaseKind::RsbElection {
                    self.summary.max_election_bits = self.summary.max_election_bits.max(drew);
                }
                self.summary.per_robot[i].decides += 1;
                self.summary.per_robot[i].last_phase = phase;
            }
            TraceEvent::PhaseChange { .. } => {}
            TraceEvent::MoveSlice {
                robot,
                step,
                advanced,
                traveled,
                length,
                end_phase,
                arrived,
            } => {
                let i = self.robot(robot);
                match self.states[i] {
                    RobotState::Moving | RobotState::Unknown => {}
                    s => self.violate(format!("r{robot} move slice while {s:?} at step {step}")),
                }
                if traveled > length + 1e-9 {
                    self.violate(format!(
                        "r{robot} traveled {traveled} past path length {length} at step {step}"
                    ));
                }
                self.states[i] =
                    if end_phase || arrived { RobotState::Idle } else { RobotState::Moving };
                self.summary.distance += advanced;
                self.summary.per_robot[i].distance += advanced;
                self.summary.per_robot[i].slices += 1;
            }
            TraceEvent::Interrupt { robot, .. } => {
                let i = self.robot(robot);
                self.summary.interrupts += 1;
                self.summary.per_robot[i].interrupts += 1;
            }
            TraceEvent::Formed { step } => {
                if self.summary.formed_step.is_none() {
                    self.summary.formed_step = Some(step);
                }
            }
            TraceEvent::TrialEnd { step, formed, cycles, bits } => {
                if self.ended {
                    self.violate("duplicate trial_end".to_string());
                }
                self.ended = true;
                self.summary.complete = true;
                self.summary.formed = Some(formed);
                // Cross-check only full captures: a windowed trace
                // legitimately misses early events.
                if self.summary.has_start {
                    if cycles != self.summary.cycles {
                        self.violate(format!(
                            "trial_end cycles {} != replayed looks {}",
                            cycles, self.summary.cycles
                        ));
                    }
                    if bits != self.summary.bits {
                        self.violate(format!(
                            "trial_end bits {} != replayed bits {}",
                            bits, self.summary.bits
                        ));
                    }
                }
                let _ = step;
            }
        }
    }

    fn draw(&mut self, robot: u32, step: u64, bits: u64) {
        let i = self.robot(robot);
        match self.states[i] {
            RobotState::Computing | RobotState::Unknown => {}
            s => self.violate(format!("r{robot} drew randomness while {s:?} at step {step}")),
        }
        self.open_bits[i] += bits;
        self.summary.bits += bits;
        self.summary.per_robot[i].bits += bits;
    }

    fn finish(mut self) -> TraceSummary {
        if !self.summary.has_start {
            self.summary.robots = self.summary.per_robot.len() as u32;
        }
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::to_json_line;

    /// A minimal legal trace: 2 robots, one election cycle each, one move.
    fn legal_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TrialStart { robots: 2, seed: 42 },
            TraceEvent::StepBegin { step: 1, looks: 2, moves: 0 },
            TraceEvent::Look { step: 1, robot: 0 },
            TraceEvent::CoinFlip { step: 1, robot: 0, heads: true },
            TraceEvent::Decide {
                step: 1,
                robot: 0,
                phase: PhaseKind::RsbElection,
                moved: true,
                path_len: 0.5,
            },
            TraceEvent::Look { step: 1, robot: 1 },
            TraceEvent::Decide {
                step: 1,
                robot: 1,
                phase: PhaseKind::RsbElection,
                moved: false,
                path_len: 0.0,
            },
            TraceEvent::StepBegin { step: 2, looks: 0, moves: 1 },
            TraceEvent::MoveSlice {
                step: 2,
                robot: 0,
                advanced: 0.3,
                traveled: 0.3,
                length: 0.5,
                end_phase: false,
                arrived: false,
            },
            TraceEvent::StepBegin { step: 3, looks: 0, moves: 1 },
            TraceEvent::MoveSlice {
                step: 3,
                robot: 0,
                advanced: 0.2,
                traveled: 0.5,
                length: 0.5,
                end_phase: true,
                arrived: true,
            },
            TraceEvent::Formed { step: 3 },
            TraceEvent::TrialEnd { step: 3, formed: true, cycles: 2, bits: 1 },
        ]
    }

    #[test]
    fn legal_trace_is_clean_and_tallied() {
        let s = TraceSummary::from_events(&legal_trace());
        assert!(s.is_clean(), "violations: {:?}", s.violations);
        assert!(s.complete && s.has_start);
        assert_eq!(s.robots, 2);
        assert_eq!(s.cycles, 2);
        assert_eq!(s.bits, 1);
        assert_eq!(s.formed, Some(true));
        assert_eq!(s.formed_step, Some(3));
        assert_eq!(s.max_election_bits, 1);
        let e = s.per_phase[PhaseKind::RsbElection.index()];
        assert_eq!(e.cycles, 2);
        assert_eq!(e.bits, 1);
        assert_eq!(e.moves, 1);
        assert!((s.distance - 0.5).abs() < 1e-12);
        assert_eq!(s.per_robot[0].looks, 1);
        assert_eq!(s.per_robot[0].slices, 2);
        assert_eq!(s.per_robot[1].moves, 0);
        assert!((s.bits_per_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_lines_round_trips_and_flags_bad_lines() {
        let lines: Vec<String> = legal_trace().iter().map(to_json_line).collect();
        let s = TraceSummary::from_lines(lines.iter().map(String::as_str)).unwrap();
        assert!(s.is_clean());
        assert_eq!(s.events, legal_trace().len() as u64);

        let mut broken = lines.clone();
        broken[3] = "{\"ev\":\"coin\"".to_string();
        let err = TraceSummary::from_lines(broken.iter().map(String::as_str)).unwrap_err();
        assert_eq!(err.0, 4, "1-based line number of the bad line");
    }

    #[test]
    fn illegal_transitions_are_violations() {
        // A Look while a move is pending.
        let events = vec![
            TraceEvent::TrialStart { robots: 1, seed: 0 },
            TraceEvent::Look { step: 1, robot: 0 },
            TraceEvent::Decide {
                step: 1,
                robot: 0,
                phase: PhaseKind::DpfRotate,
                moved: true,
                path_len: 1.0,
            },
            TraceEvent::Look { step: 2, robot: 0 },
        ];
        let s = TraceSummary::from_events(&events);
        assert!(!s.is_clean());
        assert!(s.violations[0].contains("look while Moving"), "{:?}", s.violations);

        // A move slice for an idle robot.
        let events = vec![
            TraceEvent::TrialStart { robots: 1, seed: 0 },
            TraceEvent::MoveSlice {
                step: 1,
                robot: 0,
                advanced: 0.1,
                traveled: 0.1,
                length: 0.2,
                end_phase: false,
                arrived: false,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert!(!s.is_clean());
    }

    #[test]
    fn election_cycles_with_multiple_bits_are_flagged_via_max() {
        let events = vec![
            TraceEvent::TrialStart { robots: 1, seed: 0 },
            TraceEvent::Look { step: 1, robot: 0 },
            TraceEvent::CoinFlip { step: 1, robot: 0, heads: true },
            TraceEvent::CoinFlip { step: 1, robot: 0, heads: false },
            TraceEvent::Decide {
                step: 1,
                robot: 0,
                phase: PhaseKind::RsbElection,
                moved: false,
                path_len: 0.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.max_election_bits, 2, "two coins in one election cycle");
    }

    #[test]
    fn trial_end_mismatch_is_a_violation() {
        let events = vec![
            TraceEvent::TrialStart { robots: 1, seed: 0 },
            TraceEvent::Look { step: 1, robot: 0 },
            TraceEvent::Decide {
                step: 1,
                robot: 0,
                phase: PhaseKind::Terminal,
                moved: false,
                path_len: 0.0,
            },
            TraceEvent::TrialEnd { step: 1, formed: true, cycles: 5, bits: 9 },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.violations.len(), 2, "{:?}", s.violations);
    }

    #[test]
    fn windowed_traces_relax_checks() {
        // Starts mid-run: no trial_start, first event is a move slice.
        let events = vec![
            TraceEvent::MoveSlice {
                step: 40,
                robot: 3,
                advanced: 0.1,
                traveled: 0.4,
                length: 0.9,
                end_phase: false,
                arrived: false,
            },
            TraceEvent::Look { step: 41, robot: 2 },
            TraceEvent::Decide {
                step: 41,
                robot: 2,
                phase: PhaseKind::DpfPopulate,
                moved: false,
                path_len: 0.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert!(s.is_clean(), "{:?}", s.violations);
        assert!(!s.has_start && !s.complete);
        assert_eq!(s.robots, 4, "inferred from max robot index");
    }

    #[test]
    fn backwards_steps_are_violations() {
        let events = vec![
            TraceEvent::TrialStart { robots: 1, seed: 0 },
            TraceEvent::StepBegin { step: 5, looks: 0, moves: 0 },
            TraceEvent::StepBegin { step: 4, looks: 0, moves: 0 },
        ];
        let s = TraceSummary::from_events(&events);
        assert!(!s.is_clean());
        assert!(s.violations[0].contains("backwards"));
    }

    #[test]
    fn render_mentions_the_paper_claim() {
        let s = TraceSummary::from_events(&legal_trace());
        let text = s.render();
        assert!(text.contains("paper claim <= 1: ok"), "{text}");
        assert!(text.contains("rsb-election"));
        assert!(text.contains("violations: none"));
    }
}
