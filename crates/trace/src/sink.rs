//! Trace consumers: the [`TraceSink`] trait and the provided sinks.

use crate::event::TraceEvent;
use crate::jsonl::write_json_line;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of the simulation's trace event stream.
///
/// The engine holds the installed sink as `Option<Box<dyn TraceSink>>` and
/// drops sinks whose [`TraceSink::enabled`] is false at installation time,
/// so the *disabled* path is one `Option::is_some` branch per event site —
/// no event is even constructed. Implementations must be cheap: `record` is
/// called from the simulation hot loop.
pub trait TraceSink: Send {
    /// Whether this sink wants events at all. A `false` here lets callers
    /// keep one code path while paying nothing for tracing (the engine
    /// discards the sink on installation).
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (writers). Called by the engine when the
    /// run finishes; a no-op for in-memory sinks.
    fn flush_sink(&mut self) {}

    /// The engine is about to panic on an internal invariant violation:
    /// persist whatever post-mortem evidence this sink holds. A no-op for
    /// ordinary sinks; [`CrashDumpSink`] writes its retained window to disk.
    fn crash_dump(&mut self) {}
}

/// A sink that consumes nothing and reports itself disabled. Installing it
/// is exactly equivalent to installing no sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// Collects every event in memory. For tests and short runs — an unbounded
/// trace of a budget-exhausted trial can reach millions of events; prefer
/// [`RingSink`] or [`JsonlSink`] there.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// Keeps the *last* `cap` events — a bounded flight recorder: memory stays
/// fixed on arbitrarily long runs, and on failure the window ending at the
/// failure is exactly what a post-mortem wants.
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

impl RingSink {
    /// A ring keeping at most `cap` events. `cap == 0` is legal and retains
    /// nothing (every event counts as dropped) — useful to disable a crash
    /// window without special-casing the caller.
    pub fn new(cap: usize) -> Self {
        RingSink { cap, dropped: 0, events: VecDeque::with_capacity(cap) }
    }

    /// The configured window capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The retained window, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events evicted from the front of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

/// Counts events without storing them (tests, throughput probes).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events seen.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _event: &TraceEvent) {
        self.count += 1;
    }
}

/// A shared read handle onto a [`HashSink`]'s digest.
#[derive(Debug, Clone)]
pub struct HashProbe(Arc<AtomicU64>);

impl HashProbe {
    /// The digest accumulated so far.
    pub fn digest(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a digest over the serialized (JSONL) event stream.
///
/// Two runs have equal digests iff their serialized traces are byte-equal —
/// the cheap way to assert that an *event stream*, not just the final
/// result, is bit-identical (e.g. across `--jobs` values). The digest is
/// published through an atomic so the probe can outlive the sink, which the
/// engine consumes by value.
#[derive(Debug)]
pub struct HashSink {
    state: u64,
    line: String,
    shared: Arc<AtomicU64>,
}

impl Default for HashSink {
    fn default() -> Self {
        Self::new()
    }
}

impl HashSink {
    /// A fresh digest.
    pub fn new() -> Self {
        HashSink {
            state: FNV_OFFSET,
            line: String::new(),
            shared: Arc::new(AtomicU64::new(FNV_OFFSET)),
        }
    }

    /// A handle that reads the digest while (and after) the sink is owned
    /// elsewhere.
    pub fn probe(&self) -> HashProbe {
        HashProbe(Arc::clone(&self.shared))
    }

    /// The digest accumulated so far.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl TraceSink for HashSink {
    fn record(&mut self, event: &TraceEvent) {
        write_json_line(event, &mut self.line);
        let mut h = self.state;
        for b in self.line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // The newline separates events, matching the on-disk format.
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(FNV_PRIME);
        self.state = h;
        self.shared.store(h, Ordering::Release);
    }
}

/// Forwarding through a shared handle lets a caller install a sink into an
/// engine (which takes ownership) and still read it afterwards:
/// `Box::new(Arc::clone(&shared))` goes in, the original `Arc` stays out.
impl<T: TraceSink> TraceSink for Arc<std::sync::Mutex<T>> {
    fn enabled(&self) -> bool {
        self.lock().map(|s| s.enabled()).unwrap_or(false)
    }

    fn record(&mut self, event: &TraceEvent) {
        if let Ok(mut s) = self.lock() {
            s.record(event);
        }
    }

    fn flush_sink(&mut self) {
        if let Ok(mut s) = self.lock() {
            s.flush_sink();
        }
    }

    fn crash_dump(&mut self) {
        if let Ok(mut s) = self.lock() {
            s.crash_dump();
        }
    }
}

/// Fans every event out to two sinks — e.g. a live in-memory [`VecSink`] for
/// an invariant checker plus a [`CrashDumpSink`] flight recorder. Compose
/// tees for more than two consumers.
pub struct TeeSink {
    a: Box<dyn TraceSink>,
    b: Box<dyn TraceSink>,
}

impl TeeSink {
    /// A sink forwarding to both `a` and `b` (in that order).
    pub fn new(a: Box<dyn TraceSink>, b: Box<dyn TraceSink>) -> Self {
        TeeSink { a, b }
    }
}

impl TraceSink for TeeSink {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn record(&mut self, event: &TraceEvent) {
        self.a.record(event);
        self.b.record(event);
    }

    fn flush_sink(&mut self) {
        self.a.flush_sink();
        self.b.flush_sink();
    }

    fn crash_dump(&mut self) {
        self.a.crash_dump();
        self.b.crash_dump();
    }
}

/// A bounded flight recorder that writes its window to disk when the run
/// dies: a [`RingSink`] plus a dump path.
///
/// The window is persisted as plain JSONL (replayable by the inspector as a
/// windowed trace) through three triggers:
///
/// * the engine's [`TraceSink::crash_dump`] hook — fired by `World` just
///   before it panics on an internal invariant violation;
/// * `Drop` **during a panic unwind** — covers panics the engine did not
///   anticipate (algorithm bugs, scheduler bugs), because the unwinding
///   stack drops the `World` and with it this sink;
/// * an explicit [`CrashDumpSink::dump_now`] — for harnesses (e.g. the
///   conformance fuzzer) that detect a violation outside the engine.
///
/// Each trigger writes at most once; I/O errors are swallowed on the panic
/// paths (a crash dump must never turn one failure into two) and surfaced by
/// `dump_now`.
pub struct CrashDumpSink {
    ring: RingSink,
    path: PathBuf,
    dumped: bool,
}

impl CrashDumpSink {
    /// A crash dump sink retaining the last `cap` events, writing them to
    /// `path` when triggered.
    pub fn new(path: impl Into<PathBuf>, cap: usize) -> Self {
        CrashDumpSink { ring: RingSink::new(cap), path: path.into(), dumped: false }
    }

    /// The dump destination.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a dump was already written.
    pub fn has_dumped(&self) -> bool {
        self.dumped
    }

    /// Events currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.ring.len()
    }

    /// Events evicted from the window so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Writes the retained window to the dump path now (idempotent: later
    /// triggers are no-ops once a dump exists).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating or writing the dump file.
    pub fn dump_now(&mut self) -> std::io::Result<&Path> {
        if !self.dumped {
            let mut text = String::with_capacity(self.ring.len() * 96);
            let mut line = String::with_capacity(96);
            for event in self.ring.events() {
                write_json_line(event, &mut line);
                text.push_str(&line);
                text.push('\n');
            }
            std::fs::write(&self.path, text)?;
            self.dumped = true;
        }
        Ok(&self.path)
    }
}

impl TraceSink for CrashDumpSink {
    fn record(&mut self, event: &TraceEvent) {
        self.ring.record(event);
    }

    fn crash_dump(&mut self) {
        let _ = self.dump_now();
    }
}

impl Drop for CrashDumpSink {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.dump_now();
        }
    }
}

/// Streams events as JSON lines into any [`Write`], one event per line,
/// reusing a single line buffer (no per-event allocation).
///
/// An optional event limit bounds trace size on runaway trials: once
/// reached, the sink writes one `trial_end`-shaped marker comment and drops
/// further events. I/O errors are sticky and exposed via
/// [`JsonlSink::io_error`]; `record` itself stays infallible because it is
/// called from the simulation hot loop.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    line: String,
    written: u64,
    limit: u64,
    truncated: bool,
    io_error: Option<std::io::ErrorKind>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink with no event limit.
    pub fn new(writer: W) -> Self {
        Self::with_limit(writer, u64::MAX)
    }

    /// A sink that stops writing after `limit` events.
    pub fn with_limit(writer: W, limit: u64) -> Self {
        JsonlSink {
            writer,
            line: String::with_capacity(128),
            written: 0,
            limit,
            truncated: false,
            io_error: None,
        }
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether the event limit was hit.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<std::io::ErrorKind> {
        self.io_error
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.io_error.is_some() || self.truncated {
            return;
        }
        if self.written >= self.limit {
            self.truncated = true;
            // A parseable marker: inspectors see the stream was cut here.
            let _ = self.writer.write_all(
                format!("{{\"ev\":\"step\",\"step\":{},\"looks\":0,\"moves\":0}}\n", event.step())
                    .as_bytes(),
            );
            return;
        }
        write_json_line(event, &mut self.line);
        self.line.push('\n');
        if let Err(e) = self.writer.write_all(self.line.as_bytes()) {
            self.io_error = Some(e.kind());
        }
        self.written += 1;
    }

    fn flush_sink(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.io_error.get_or_insert(e.kind());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;
    use crate::jsonl::parse_line;

    fn ev(step: u64) -> TraceEvent {
        TraceEvent::Look { step, robot: (step % 5) as u32 }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(VecSink::new().enabled());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::new();
        for i in 0..4 {
            s.record(&ev(i));
        }
        let steps: Vec<u64> = s.events().iter().map(TraceEvent::step).collect();
        assert_eq!(steps, [0, 1, 2, 3]);
        assert_eq!(s.into_events().len(), 4);
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.record(&ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 7);
        let steps: Vec<u64> = s.events().map(TraceEvent::step).collect();
        assert_eq!(steps, [7, 8, 9]);
    }

    #[test]
    fn ring_sink_window_is_exact_across_many_wrap_cycles() {
        // The retained window must be exactly the last `cap` events no
        // matter how many times the ring wrapped.
        for cap in [1usize, 2, 3, 7] {
            let mut s = RingSink::new(cap);
            let total: u64 = (cap as u64) * 5 + 3; // several full wrap cycles
            for i in 0..total {
                s.record(&ev(i));
                // Invariant after every record: window = last min(i+1, cap).
                let expect_len = ((i + 1) as usize).min(cap);
                assert_eq!(s.len(), expect_len, "cap {cap} after {i}");
            }
            assert_eq!(s.capacity(), cap);
            assert_eq!(s.dropped(), total - cap as u64);
            let got: Vec<u64> = s.events().map(TraceEvent::step).collect();
            let want: Vec<u64> = (total - cap as u64..total).collect();
            assert_eq!(got, want, "cap {cap}");
        }
    }

    #[test]
    fn ring_sink_cap_zero_retains_nothing() {
        let mut s = RingSink::new(0);
        for i in 0..10 {
            s.record(&ev(i));
        }
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 10, "every event counts as dropped");
        assert_eq!(s.events().count(), 0);
    }

    #[test]
    fn ring_sink_cap_one_keeps_only_the_newest() {
        let mut s = RingSink::new(1);
        assert!(s.is_empty());
        for i in 0..4 {
            s.record(&ev(i));
            let got: Vec<u64> = s.events().map(TraceEvent::step).collect();
            assert_eq!(got, [i]);
        }
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn tee_sink_fans_out_to_both() {
        use std::sync::Mutex;
        let left = Arc::new(Mutex::new(VecSink::new()));
        let right = Arc::new(Mutex::new(CountingSink::new()));
        let mut tee = TeeSink::new(Box::new(Arc::clone(&left)), Box::new(Arc::clone(&right)));
        assert!(tee.enabled());
        for i in 0..3 {
            tee.record(&ev(i));
        }
        tee.flush_sink();
        assert_eq!(left.lock().unwrap().events().len(), 3);
        assert_eq!(right.lock().unwrap().count(), 3);
    }

    #[test]
    fn crash_dump_sink_writes_window_on_demand() {
        let dir = std::env::temp_dir().join("apf-crash-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("on-demand.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut s = CrashDumpSink::new(&path, 4);
        for i in 0..10 {
            s.record(&ev(i));
        }
        assert!(!s.has_dumped());
        assert_eq!(s.window_len(), 4);
        assert_eq!(s.dropped(), 6);
        s.dump_now().unwrap();
        assert!(s.has_dumped());
        let text = std::fs::read_to_string(&path).unwrap();
        let steps: Vec<u64> = text.lines().map(|l| parse_line(l).unwrap().step()).collect();
        assert_eq!(steps, [6, 7, 8, 9], "exactly the last-N window");
        // Idempotent: a second trigger does not rewrite.
        s.record(&ev(99));
        s.crash_dump();
        let text2 = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, text2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_dump_sink_flushes_on_panic_unwind() {
        let dir = std::env::temp_dir().join("apf-crash-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unwind.jsonl");
        let _ = std::fs::remove_file(&path);
        let path_clone = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut s = CrashDumpSink::new(&path_clone, 8);
            s.record(&ev(1));
            s.record(&ev(2));
            panic!("simulated engine failure");
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "window flushed by Drop during unwind");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        for i in 0..5 {
            s.record(&ev(i));
        }
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn hash_sink_is_order_sensitive_and_probe_matches() {
        let mut a = HashSink::new();
        let mut b = HashSink::new();
        let pa = a.probe();
        a.record(&ev(1));
        a.record(&ev(2));
        b.record(&ev(2));
        b.record(&ev(1));
        assert_ne!(a.digest(), b.digest(), "order must matter");
        assert_eq!(pa.digest(), a.digest());

        let mut c = HashSink::new();
        c.record(&ev(1));
        c.record(&ev(2));
        assert_eq!(c.digest(), a.digest(), "same stream, same digest");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(&TraceEvent::TrialStart { robots: 8, seed: 3 });
        s.record(&TraceEvent::Decide {
            step: 1,
            robot: 2,
            phase: PhaseKind::DpfRotate,
            moved: false,
            path_len: 0.0,
        });
        s.flush_sink();
        assert_eq!(s.written(), 2);
        assert!(s.io_error().is_none());
        let bytes = s.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse_line(line).unwrap();
        }
    }

    #[test]
    fn shared_sinks_forward_through_the_handle() {
        use std::sync::Mutex;
        let shared = Arc::new(Mutex::new(VecSink::new()));
        let mut boxed: Box<dyn TraceSink> = Box::new(Arc::clone(&shared));
        assert!(boxed.enabled());
        boxed.record(&ev(1));
        boxed.record(&ev(2));
        drop(boxed);
        assert_eq!(shared.lock().unwrap().events().len(), 2);
    }

    #[test]
    fn jsonl_sink_truncates_at_limit() {
        let mut s = JsonlSink::with_limit(Vec::new(), 3);
        for i in 0..10 {
            s.record(&ev(i));
        }
        assert_eq!(s.written(), 3);
        assert!(s.truncated());
        let text = String::from_utf8(s.into_inner()).unwrap();
        // 3 events + 1 truncation marker, all parseable.
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            parse_line(line).unwrap();
        }
    }
}
