//! JSONL serialization of trace events, and its parser.
//!
//! One event per line, a flat JSON object whose `"ev"` key names the
//! variant. The workspace is offline (no serde); the format is small and
//! fixed, so both directions are hand-rolled — like the report code in
//! `apf-bench`. Floats are printed with Rust's shortest round-trip `{}`
//! formatting, so a parsed trace is bit-identical to the emitted one.

use crate::event::{PhaseKind, TraceEvent};
use std::fmt::Write as _;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn to_json_line(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    write_json_line(ev, &mut s);
    s
}

/// Serializes one event into `out` (no trailing newline). The buffer is
/// cleared first, so sinks can reuse one allocation for the whole stream.
pub fn write_json_line(ev: &TraceEvent, out: &mut String) {
    out.clear();
    match *ev {
        TraceEvent::TrialStart { robots, seed } => {
            let _ = write!(out, "{{\"ev\":\"trial_start\",\"robots\":{robots},\"seed\":{seed}}}");
        }
        TraceEvent::StepBegin { step, looks, moves } => {
            let _ = write!(
                out,
                "{{\"ev\":\"step\",\"step\":{step},\"looks\":{looks},\"moves\":{moves}}}"
            );
        }
        TraceEvent::Look { step, robot } => {
            let _ = write!(out, "{{\"ev\":\"look\",\"step\":{step},\"robot\":{robot}}}");
        }
        TraceEvent::CoinFlip { step, robot, heads } => {
            let _ = write!(
                out,
                "{{\"ev\":\"coin\",\"step\":{step},\"robot\":{robot},\"heads\":{heads}}}"
            );
        }
        TraceEvent::RandomWord { step, robot, bits } => {
            let _ = write!(
                out,
                "{{\"ev\":\"word\",\"step\":{step},\"robot\":{robot},\"bits\":{bits}}}"
            );
        }
        TraceEvent::Decide { step, robot, phase, moved, path_len } => {
            let _ = write!(
                out,
                "{{\"ev\":\"decide\",\"step\":{step},\"robot\":{robot},\"phase\":\"{}\",\"moved\":{moved},\"path_len\":{}}}",
                phase.label(),
                f64_json(path_len)
            );
        }
        TraceEvent::PhaseChange { step, robot, from, to } => {
            let _ = write!(
                out,
                "{{\"ev\":\"phase\",\"step\":{step},\"robot\":{robot},\"from\":\"{}\",\"to\":\"{}\"}}",
                from.label(),
                to.label()
            );
        }
        TraceEvent::MoveSlice { step, robot, advanced, traveled, length, end_phase, arrived } => {
            let _ = write!(
                out,
                "{{\"ev\":\"move\",\"step\":{step},\"robot\":{robot},\"advanced\":{},\"traveled\":{},\"length\":{},\"end_phase\":{end_phase},\"arrived\":{arrived}}}",
                f64_json(advanced),
                f64_json(traveled),
                f64_json(length)
            );
        }
        TraceEvent::Interrupt { step, robot, traveled, length } => {
            let _ = write!(
                out,
                "{{\"ev\":\"interrupt\",\"step\":{step},\"robot\":{robot},\"traveled\":{},\"length\":{}}}",
                f64_json(traveled),
                f64_json(length)
            );
        }
        TraceEvent::Formed { step } => {
            let _ = write!(out, "{{\"ev\":\"formed\",\"step\":{step}}}");
        }
        TraceEvent::TrialEnd { step, formed, cycles, bits } => {
            let _ = write!(
                out,
                "{{\"ev\":\"trial_end\",\"step\":{step},\"formed\":{formed},\"cycles\":{cycles},\"bits\":{bits}}}"
            );
        }
    }
}

/// Appends `s` to `out` as the inside of a JSON string literal (no quotes),
/// escaping `"`/`\` and control characters per RFC 8259.
///
/// The trace events themselves only carry fixed labels and never need this,
/// but consumers that embed *arbitrary* text into JSON lines — the campaign
/// service's request log, for one — must escape it or a hostile path/header
/// corrupts the stream.
pub fn escape_json_str(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Finite floats print with round-trip precision; NaN/inf (not valid JSON)
/// become `null` and parse back as an error — a trace must not contain them.
fn f64_json(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable explanation.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace line: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// A scanned key/value pair; values keep their raw JSON token text.
struct Field<'a> {
    key: &'a str,
    value: &'a str,
}

/// Scans one flat JSON object (string/number/bool values, no nesting, as
/// emitted by [`write_json_line`]) into raw fields.
fn scan_object(line: &str) -> Result<Vec<Field<'_>>, ParseError> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError::new("not a JSON object"))?;
    let mut fields = Vec::with_capacity(8);
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key.
        let r = rest
            .strip_prefix('"')
            .ok_or_else(|| ParseError::new(format!("expected a key at: {rest}")))?;
        let close = r.find('"').ok_or_else(|| ParseError::new("unterminated key"))?;
        let key = &r[..close];
        let r = r[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| ParseError::new(format!("missing ':' after key {key:?}")))?;
        let r = r.trim_start();
        // Value: a string token or a bare token up to the next ',' or end.
        let (value, tail) = if let Some(v) = r.strip_prefix('"') {
            let close = v.find('"').ok_or_else(|| ParseError::new("unterminated string value"))?;
            (&r[..close + 2], &v[close + 1..])
        } else {
            let end = r.find(',').unwrap_or(r.len());
            let token = r[..end].trim();
            if token.is_empty() {
                return Err(ParseError::new(format!("empty value for key {key:?}")));
            }
            (token, &r[end.min(r.len())..])
        };
        fields.push(Field { key, value });
        let tail = tail.trim_start();
        rest = match tail.strip_prefix(',') {
            Some(t) => t.trim_start(),
            None if tail.is_empty() => tail,
            None => return Err(ParseError::new(format!("expected ',' at: {tail}"))),
        };
    }
    Ok(fields)
}

struct Fields<'a>(Vec<Field<'a>>);

impl<'a> Fields<'a> {
    fn raw(&self, key: &str) -> Result<&'a str, ParseError> {
        self.0
            .iter()
            .find(|f| f.key == key)
            .map(|f| f.value)
            .ok_or_else(|| ParseError::new(format!("missing key {key:?}")))
    }

    fn str(&self, key: &str) -> Result<&'a str, ParseError> {
        let raw = self.raw(key)?;
        raw.strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| ParseError::new(format!("key {key:?} is not a string: {raw}")))
    }

    fn u64(&self, key: &str) -> Result<u64, ParseError> {
        let raw = self.raw(key)?;
        raw.parse().map_err(|_| ParseError::new(format!("key {key:?} is not a u64: {raw}")))
    }

    fn u32(&self, key: &str) -> Result<u32, ParseError> {
        let raw = self.raw(key)?;
        raw.parse().map_err(|_| ParseError::new(format!("key {key:?} is not a u32: {raw}")))
    }

    fn f64(&self, key: &str) -> Result<f64, ParseError> {
        let raw = self.raw(key)?;
        let x: f64 =
            raw.parse().map_err(|_| ParseError::new(format!("key {key:?} is not a f64: {raw}")))?;
        if x.is_finite() {
            Ok(x)
        } else {
            Err(ParseError::new(format!("key {key:?} is not finite: {raw}")))
        }
    }

    fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.raw(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(ParseError::new(format!("key {key:?} is not a bool: {other}"))),
        }
    }

    fn phase(&self, key: &str) -> Result<PhaseKind, ParseError> {
        let label = self.str(key)?;
        PhaseKind::from_label(label)
            .ok_or_else(|| ParseError::new(format!("unknown phase label {label:?}")))
    }
}

/// Parses one JSONL line back into a [`TraceEvent`].
///
/// # Errors
///
/// Returns [`ParseError`] on anything that [`write_json_line`] would not
/// emit — the inspector treats that as a corrupted trace.
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let f = Fields(scan_object(line)?);
    match f.str("ev")? {
        "trial_start" => {
            Ok(TraceEvent::TrialStart { robots: f.u32("robots")?, seed: f.u64("seed")? })
        }
        "step" => Ok(TraceEvent::StepBegin {
            step: f.u64("step")?,
            looks: f.u32("looks")?,
            moves: f.u32("moves")?,
        }),
        "look" => Ok(TraceEvent::Look { step: f.u64("step")?, robot: f.u32("robot")? }),
        "coin" => Ok(TraceEvent::CoinFlip {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            heads: f.bool("heads")?,
        }),
        "word" => Ok(TraceEvent::RandomWord {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            bits: f.u32("bits")?,
        }),
        "decide" => Ok(TraceEvent::Decide {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            phase: f.phase("phase")?,
            moved: f.bool("moved")?,
            path_len: f.f64("path_len")?,
        }),
        "phase" => Ok(TraceEvent::PhaseChange {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            from: f.phase("from")?,
            to: f.phase("to")?,
        }),
        "move" => Ok(TraceEvent::MoveSlice {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            advanced: f.f64("advanced")?,
            traveled: f.f64("traveled")?,
            length: f.f64("length")?,
            end_phase: f.bool("end_phase")?,
            arrived: f.bool("arrived")?,
        }),
        "interrupt" => Ok(TraceEvent::Interrupt {
            step: f.u64("step")?,
            robot: f.u32("robot")?,
            traveled: f.f64("traveled")?,
            length: f.f64("length")?,
        }),
        "formed" => Ok(TraceEvent::Formed { step: f.u64("step")? }),
        "trial_end" => Ok(TraceEvent::TrialEnd {
            step: f.u64("step")?,
            formed: f.bool("formed")?,
            cycles: f.u64("cycles")?,
            bits: f.u64("bits")?,
        }),
        other => Err(ParseError::new(format!("unknown event kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TrialStart { robots: 8, seed: u64::MAX },
            TraceEvent::StepBegin { step: 1, looks: 8, moves: 0 },
            TraceEvent::Look { step: 1, robot: 0 },
            TraceEvent::CoinFlip { step: 1, robot: 0, heads: true },
            TraceEvent::RandomWord { step: 2, robot: 7, bits: 64 },
            TraceEvent::Decide {
                step: 1,
                robot: 0,
                phase: PhaseKind::RsbElection,
                moved: true,
                path_len: 0.12345678901234567,
            },
            TraceEvent::PhaseChange {
                step: 3,
                robot: 2,
                from: PhaseKind::RsbShift,
                to: PhaseKind::DpfFrame,
            },
            TraceEvent::MoveSlice {
                step: 4,
                robot: 1,
                advanced: 1e-3,
                traveled: 0.25,
                length: 1.5,
                end_phase: true,
                arrived: false,
            },
            TraceEvent::Interrupt { step: 4, robot: 1, traveled: 0.25, length: 1.5 },
            TraceEvent::Formed { step: 9 },
            TraceEvent::TrialEnd { step: 10, formed: true, cycles: 42, bits: 7 },
        ]
    }

    #[test]
    fn round_trips_bit_identically() {
        for ev in samples() {
            let line = to_json_line(&ev);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "line: {line}");
            // Serializing the parsed event reproduces the exact line.
            assert_eq!(to_json_line(&back), line);
        }
    }

    #[test]
    fn lines_are_single_line_json_objects() {
        for ev in samples() {
            let line = to_json_line(&ev);
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"ev\":\"nope\",\"step\":1}",
            "{\"ev\":\"look\",\"step\":1}",                    // missing robot
            "{\"ev\":\"look\",\"step\":-1,\"robot\":0}",       // negative step
            "{\"ev\":\"look\",\"step\":1,\"robot\":\"zero\"}", // wrong type
            "{\"ev\":\"decide\",\"step\":1,\"robot\":0,\"phase\":\"bogus\",\"moved\":true,\"path_len\":0}",
            "{\"ev\":\"formed\",\"step\":1",                   // unterminated
            "{\"ev\":\"move\",\"step\":1,\"robot\":0,\"advanced\":null,\"traveled\":0,\"length\":1,\"end_phase\":false,\"arrived\":false}",
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_json_str_neutralizes_hostile_text() {
        let mut out = String::new();
        escape_json_str("a\"b\\c\nd\te\u{01}f", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
        // No raw control characters, quotes, or backslashes survive except
        // as part of an escape sequence — the line stays one line.
        assert!(!out.contains('\n') && !out.contains('\u{01}'));
    }

    #[test]
    fn parser_tolerates_whitespace() {
        let line = "{ \"ev\": \"look\", \"step\": 3, \"robot\": 2 }";
        assert_eq!(parse_line(line).unwrap(), TraceEvent::Look { step: 3, robot: 2 });
    }
}
