//! Structured event tracing for the APF simulator.
//!
//! The paper's claims are about *execution dynamics* — one random bit per
//! LCM cycle, `ψ_RSB` → `ψ_DPF` phase transitions, adversarial move
//! interruptions under ASYNC — and an end-of-run counter struct cannot show
//! any of them. This crate provides the observability layer the rest of the
//! workspace plugs into:
//!
//! * [`TraceEvent`] — a typed, allocation-free event vocabulary covering the
//!   whole LCM cycle (Look, Compute decision, Move slices), the randomness
//!   interface (coin flips, word draws), algorithm phases
//!   ([`PhaseKind`] transitions), and adversary interruptions;
//! * [`TraceSink`] — the consumer trait the simulation engine threads
//!   through `World::step`. A sink reporting [`TraceSink::enabled`]` ==
//!   false` is dropped at installation time, so a disabled trace costs one
//!   `Option` branch per event site and constructs no events at all;
//! * sinks: [`VecSink`] (collect everything), [`RingSink`] (bounded
//!   last-N window), [`JsonlSink`] (streaming JSON-lines writer, one event
//!   per line, hand-rolled — no serde in this offline workspace),
//!   [`HashSink`] (order-sensitive FNV-1a digest of the serialized stream,
//!   for bit-identical determinism checks), [`CrashDumpSink`] (a flight
//!   recorder that persists its last-N window to disk on engine invariant
//!   violations and panic unwinds), [`TeeSink`] (fan-out to two sinks),
//!   [`CountingSink`] and [`NullSink`] (tests);
//! * [`jsonl`] — the serialization format and its parser, so captured
//!   traces round-trip;
//! * [`inspect`] — [`inspect::TraceSummary`]: replays an event stream,
//!   validates it (Look/Move legality, monotonic steps, the paper's
//!   ≤ 1-bit-per-election-cycle claim), and renders per-robot timelines and
//!   per-phase statistics;
//! * [`span`] — wall-time span profiling ([`Span`]/[`SpanSink`]): a
//!   *separate* channel from the event stream, so timing data can never
//!   perturb trace digests. Zero-allocation and branch-cheap when no sink
//!   is installed.
//!
//! This crate is a dependency *leaf*: `apf-sim` emits into it, `apf-core`
//! tags decisions with its [`PhaseKind`], and `apf-bench`/the CLI consume
//! traces through it.

#![forbid(unsafe_code)]

pub mod event;
pub mod inspect;
pub mod jsonl;
pub mod sink;
pub mod span;

pub use event::{PhaseKind, TraceEvent};
pub use inspect::{describe, PhaseTally, RobotTally, TraceSummary};
pub use jsonl::{escape_json_str, parse_line, to_json_line, ParseError};
pub use sink::{
    CountingSink, CrashDumpSink, HashProbe, HashSink, JsonlSink, NullSink, RingSink, TeeSink,
    TraceSink, VecSink,
};
pub use span::{NullSpanSink, Span, SpanGuard, SpanLabel, SpanSink, SpanStack, VecSpanSink};
