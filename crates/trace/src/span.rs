//! Wall-time span profiling, structurally segregated from the event stream.
//!
//! Trace *events* ([`crate::TraceEvent`]) are deterministic: they feed FNV
//! digests, the golden corpus, and the conformance fuzzer, so a single
//! wall-clock nanosecond in that stream would make every digest
//! machine-dependent. Spans are the opposite — pure timing — and therefore
//! flow through a **separate channel**: a [`SpanSink`] installed per thread,
//! never through [`crate::TraceSink`], never serialized into JSONL, never
//! digested. Enabling spans cannot change a trace digest by construction
//! (and `scripts/check.sh` gates on it anyway).
//!
//! # Vocabulary
//!
//! A [`Span`] is one timed region: a phase of the LCM cycle (`trial`,
//! `look`, `compute`, `move`) or one of the analysis kernels E9 identifies
//! as the scalability ceiling (`sec`, `views`, `rho`, `regular`,
//! `shifted`). Spans nest: the thread keeps an open-span stack, so every
//! recorded span carries its full ancestry ([`SpanStack`]) plus inclusive
//! (`total_ns`) and exclusive (`self_ns`) time — exactly what a
//! collapsed-stacks/flamegraph fold needs.
//!
//! # Cost model
//!
//! * **Disabled** (no sink installed): [`enter`] reads one `const`
//!   thread-local `Cell<bool>` and returns an unarmed guard. No clock read,
//!   no allocation, no `RefCell` borrow — one predictable branch. A test in
//!   `tests/span_alloc.rs` proves the zero-allocation claim with a counting
//!   allocator.
//! * **Enabled**: two monotonic clock reads per span plus whatever the
//!   installed [`SpanSink`] does with the record.
//!
//! This module is the **only sanctioned wall-clock site** inside the
//! simulation crates: apf-lint rule D3 (`no-wallclock-in-sim`) scopes over
//! `apf-trace` with exactly this file allowlisted, so `Instant::now`
//! anywhere else in sim/core/geometry/trace is a lint failure. Simulation
//! code that needs a timestamp calls [`clock_ns`].

use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum nesting depth a recorded span can carry. Deeper spans are not
/// recorded (the drop is counted via [`take`]'s sink — see
/// [`SpanSink::record_truncated`]); the pipeline's natural depth is
/// `trial > look > compute > kernel > kernel` ≈ 5–6.
pub const MAX_DEPTH: usize = 12;

/// What a span measures: an LCM-cycle phase or an analysis kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanLabel {
    /// One whole trial (engine-level).
    Trial,
    /// One robot's Look (snapshot + compute, sim-level).
    Look,
    /// The Compute inside a Look (the algorithm's decision).
    Compute,
    /// One robot's Move slice application.
    Move,
    /// Welzl smallest-enclosing-circle kernel.
    Sec,
    /// View ordering kernel ([`ViewAnalysis::compute`]-shaped).
    Views,
    /// Symmetricity ρ(P) kernel.
    Rho,
    /// Regular-set reg(P) kernel.
    Regular,
    /// ε-shifted regular-set matching kernel (the E9 dominator).
    Shifted,
}

impl SpanLabel {
    /// Number of labels (dense indices `0..COUNT`).
    pub const COUNT: usize = 9;

    /// Every label, in index order.
    pub const ALL: [SpanLabel; SpanLabel::COUNT] = [
        SpanLabel::Trial,
        SpanLabel::Look,
        SpanLabel::Compute,
        SpanLabel::Move,
        SpanLabel::Sec,
        SpanLabel::Views,
        SpanLabel::Rho,
        SpanLabel::Regular,
        SpanLabel::Shifted,
    ];

    /// Dense index (`0..COUNT`).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake-case name (used as the flamegraph frame name).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanLabel::Trial => "trial",
            SpanLabel::Look => "look",
            SpanLabel::Compute => "compute",
            SpanLabel::Move => "move",
            SpanLabel::Sec => "sec",
            SpanLabel::Views => "views",
            SpanLabel::Rho => "rho",
            SpanLabel::Regular => "regular",
            SpanLabel::Shifted => "shifted",
        }
    }

    /// Parses a [`SpanLabel::label`] name back.
    #[must_use]
    pub fn from_label(s: &str) -> Option<SpanLabel> {
        SpanLabel::ALL.into_iter().find(|l| l.label() == s)
    }

    /// Whether this label is an analysis kernel (vs an LCM-cycle phase).
    #[must_use]
    pub fn is_kernel(self) -> bool {
        matches!(
            self,
            SpanLabel::Sec
                | SpanLabel::Views
                | SpanLabel::Rho
                | SpanLabel::Regular
                | SpanLabel::Shifted
        )
    }
}

/// A span's ancestry, root-first, ending with the span's own label.
///
/// Unused slots are normalized to `SpanLabel::Trial` so the derived
/// ordering (frames lexicographically, then length) is total and
/// deterministic — fold maps key on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanStack {
    frames: [SpanLabel; MAX_DEPTH],
    len: u8,
}

impl SpanStack {
    /// An empty stack.
    #[must_use]
    pub fn new() -> SpanStack {
        SpanStack { frames: [SpanLabel::Trial; MAX_DEPTH], len: 0 }
    }

    /// Builds a stack from root-first frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` exceeds [`MAX_DEPTH`].
    #[must_use]
    pub fn of(frames: &[SpanLabel]) -> SpanStack {
        assert!(frames.len() <= MAX_DEPTH, "span stack deeper than MAX_DEPTH");
        let mut s = SpanStack::new();
        for &f in frames {
            s.push(f);
        }
        s
    }

    fn push(&mut self, label: SpanLabel) {
        self.frames[self.len as usize] = label;
        self.len += 1;
    }

    /// Frames, root-first; the last frame is the span's own label.
    #[must_use]
    pub fn frames(&self) -> &[SpanLabel] {
        &self.frames[..self.len as usize]
    }

    /// Number of frames.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.len as usize
    }

    /// The leaf frame (the span's own label), if any.
    #[must_use]
    pub fn leaf(&self) -> Option<SpanLabel> {
        self.frames().last().copied()
    }

    /// The collapsed-stacks frame path: `trial;look;compute;shifted`.
    #[must_use]
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (i, f) in self.frames().iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(f.label());
        }
        out
    }
}

impl Default for SpanStack {
    fn default() -> Self {
        SpanStack::new()
    }
}

/// One completed timed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What was timed (equals `stack.leaf()`).
    pub label: SpanLabel,
    /// Full ancestry, root-first, including `label` as the last frame.
    pub stack: SpanStack,
    /// The robot the span is attributed to: its own, or the nearest
    /// enclosing span's (kernels inherit the robot of the Look that called
    /// them). `None` for engine-level spans.
    pub robot: Option<u32>,
    /// Trial index attribution (set per thread via [`set_trial`]).
    pub trial: Option<u64>,
    /// Start time, monotonic nanoseconds (see [`clock_ns`]).
    pub start_ns: u64,
    /// Inclusive wall time (children included).
    pub total_ns: u64,
    /// Exclusive wall time (`total_ns` minus direct children's totals).
    pub self_ns: u64,
}

/// Consumer of completed spans, installed per thread via [`install`] —
/// the timing analogue of [`crate::TraceSink`], kept as a separate trait
/// (and separate channel) so timing can never leak into digest paths.
pub trait SpanSink {
    /// A sink reporting `false` is dropped at [`install`] time: span
    /// recording stays fully disabled (one branch per [`enter`], zero
    /// allocations).
    fn enabled(&self) -> bool {
        true
    }

    /// One completed span. Called innermost-first (a span is recorded when
    /// it closes), on the thread that recorded it.
    fn record_span(&mut self, span: &Span);

    /// A span was dropped because the open stack exceeded [`MAX_DEPTH`].
    /// Default: ignore.
    fn record_truncated(&mut self) {}
}

/// Discards everything and reports disabled — installing it is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSpanSink;

impl SpanSink for NullSpanSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&mut self, _span: &Span) {}
}

/// Collects every span in completion order (tests, small captures).
#[derive(Debug, Clone, Default)]
pub struct VecSpanSink {
    /// Completed spans, innermost-first.
    pub spans: Vec<Span>,
    /// Spans dropped for exceeding [`MAX_DEPTH`].
    pub truncated: u64,
}

impl SpanSink for VecSpanSink {
    fn record_span(&mut self, span: &Span) {
        self.spans.push(*span);
    }

    fn record_truncated(&mut self) {
        self.truncated += 1;
    }
}

/// Shared-handle installation: install an `Arc<Mutex<S>>` clone and keep
/// the other end to read the collected data back after [`take`] — the same
/// pattern [`crate::TraceSink`] supports for install-then-read-back.
impl<S: SpanSink> SpanSink for Arc<Mutex<S>> {
    fn enabled(&self) -> bool {
        // apf-lint: allow(panic-policy) — lock poisoning means a recording thread panicked; propagate
        self.lock().expect("span sink lock poisoned").enabled()
    }

    fn record_span(&mut self, span: &Span) {
        // apf-lint: allow(panic-policy) — lock poisoning means a recording thread panicked; propagate
        self.lock().expect("span sink lock poisoned").record_span(span);
    }

    fn record_truncated(&mut self) {
        // apf-lint: allow(panic-policy) — lock poisoning means a recording thread panicked; propagate
        self.lock().expect("span sink lock poisoned").record_truncated();
    }
}

/// One open (not yet closed) span on the thread's stack.
#[derive(Clone, Copy)]
struct Open {
    label: SpanLabel,
    robot: Option<u32>,
    start_ns: u64,
    child_ns: u64,
}

/// Per-thread recording state. Fixed-size stack: pushing and popping spans
/// allocates nothing; only the installed sink may allocate.
struct SpanState {
    sink: Option<Box<dyn SpanSink>>,
    stack: [Open; MAX_DEPTH],
    depth: usize,
    trial: Option<u64>,
}

impl SpanState {
    const fn new() -> SpanState {
        const IDLE: Open = Open { label: SpanLabel::Trial, robot: None, start_ns: 0, child_ns: 0 };
        SpanState { sink: None, stack: [IDLE; MAX_DEPTH], depth: 0, trial: None }
    }
}

thread_local! {
    /// Fast-path flag, mirrored from `STATE.sink.is_some()`. `const`
    /// initialization keeps the disabled-path read allocation-free.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<SpanState> = const { RefCell::new(SpanState::new()) };
}

/// Monotonic nanoseconds since a process-local epoch.
///
/// This is the workspace's single sanctioned wall-clock read for
/// simulation-side timing (see the module docs and lint rule D3): sim code
/// wanting an opt-in timestamp (e.g. `WorldConfig::time_compute`) calls
/// this instead of `Instant::now`.
#[must_use]
pub fn clock_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    // u128 → u64 nanosecond narrowing: saturates after ~584 years of uptime.
    u64::try_from(Instant::now().duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Installs `sink` as this thread's span recorder and returns the previous
/// one, if any. A sink with [`SpanSink::enabled`]` == false` is dropped
/// immediately — recording stays disabled and [`enter`] stays free.
pub fn install(sink: Box<dyn SpanSink>) -> Option<Box<dyn SpanSink>> {
    let previous = take();
    if !sink.enabled() {
        return previous;
    }
    STATE.with(|s| s.borrow_mut().sink = Some(sink));
    ACTIVE.with(|a| a.set(true));
    previous
}

/// Uninstalls and returns this thread's span recorder (open spans stay on
/// the stack; they are simply not recorded while no sink is installed).
pub fn take() -> Option<Box<dyn SpanSink>> {
    ACTIVE.with(|a| a.set(false));
    STATE.with(|s| s.borrow_mut().sink.take())
}

/// Whether a span sink is installed on this thread.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Sets the trial index stamped on subsequently recorded spans.
pub fn set_trial(trial: Option<u64>) {
    if !is_active() {
        return;
    }
    STATE.with(|s| s.borrow_mut().trial = trial);
}

/// Opens a span; the returned guard closes (and records) it on drop.
pub fn enter(label: SpanLabel) -> SpanGuard {
    enter_inner(label, None)
}

/// Opens a span attributed to `robot` (nested kernel spans inherit it).
pub fn enter_robot(label: SpanLabel, robot: u32) -> SpanGuard {
    enter_inner(label, Some(robot))
}

fn enter_inner(label: SpanLabel, robot: Option<u32>) -> SpanGuard {
    if !ACTIVE.with(Cell::get) {
        return SpanGuard { armed: false };
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.depth >= MAX_DEPTH {
            if let Some(sink) = s.sink.as_mut() {
                sink.record_truncated();
            }
            return SpanGuard { armed: false };
        }
        let depth = s.depth;
        s.stack[depth] = Open { label, robot, start_ns: clock_ns(), child_ns: 0 };
        s.depth += 1;
        SpanGuard { armed: true }
    })
}

/// Closes the innermost open span. Guards drop LIFO (Rust scoping), so the
/// popped span is always the guard's own.
fn exit_innermost() {
    let end_ns = clock_ns();
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.depth == 0 {
            return; // take()/install() churn mid-span; nothing to record
        }
        s.depth -= 1;
        let open = s.stack[s.depth];
        let total_ns = end_ns.saturating_sub(open.start_ns);
        let self_ns = total_ns.saturating_sub(open.child_ns);
        if s.depth > 0 {
            let parent = s.depth - 1;
            s.stack[parent].child_ns = s.stack[parent].child_ns.saturating_add(total_ns);
        }
        let mut stack = SpanStack::new();
        for frame in &s.stack[..s.depth] {
            stack.push(frame.label);
        }
        stack.push(open.label);
        // A span without its own attribution inherits the innermost
        // enclosing robot (kernels inherit the Look that called them).
        let robot = open.robot.or_else(|| s.stack[..s.depth].iter().rev().find_map(|f| f.robot));
        let span = Span {
            label: open.label,
            stack,
            robot,
            trial: s.trial,
            start_ns: open.start_ns,
            total_ns,
            self_ns,
        };
        if let Some(sink) = s.sink.as_mut() {
            sink.record_span(&span);
        }
    });
}

/// Closes its span on drop. Unarmed guards (spans entered while disabled
/// or beyond [`MAX_DEPTH`]) do nothing.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            exit_innermost();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(f: impl FnOnce()) -> VecSpanSink {
        let handle: Arc<Mutex<VecSpanSink>> = Arc::default();
        assert!(install(Box::new(Arc::clone(&handle))).is_none());
        f();
        drop(take());
        let mut sink = handle.lock().unwrap();
        std::mem::take(&mut *sink)
    }

    #[test]
    fn disabled_enter_is_inert() {
        assert!(!is_active());
        let g = enter(SpanLabel::Sec);
        drop(g);
        // No sink installed: nothing observable happened, and nothing
        // panicked. (The zero-allocation claim is proven by the counting-
        // allocator test in tests/span_alloc.rs.)
        assert!(!is_active());
    }

    #[test]
    fn spans_nest_with_self_time_attribution() {
        let sink = collect(|| {
            set_trial(Some(7));
            let _t = enter(SpanLabel::Trial);
            {
                let _l = enter_robot(SpanLabel::Look, 3);
                let _k = enter(SpanLabel::Sec);
            }
        });
        assert_eq!(sink.spans.len(), 3, "{:?}", sink.spans);
        // Innermost-first completion order.
        let (sec, look, trial) = (&sink.spans[0], &sink.spans[1], &sink.spans[2]);
        assert_eq!(sec.label, SpanLabel::Sec);
        assert_eq!(sec.stack.folded(), "trial;look;sec");
        assert_eq!(sec.robot, Some(3), "kernel inherits the enclosing Look's robot");
        assert_eq!(sec.trial, Some(7));
        assert_eq!(look.label, SpanLabel::Look);
        assert_eq!(look.robot, Some(3));
        assert!(look.total_ns >= sec.total_ns);
        assert_eq!(look.self_ns, look.total_ns - sec.total_ns);
        assert_eq!(trial.stack.folded(), "trial");
        assert_eq!(trial.robot, None);
        assert!(trial.total_ns >= look.total_ns);
    }

    #[test]
    fn depth_overflow_truncates_instead_of_corrupting() {
        let sink = collect(|| {
            let guards: Vec<SpanGuard> =
                (0..MAX_DEPTH + 3).map(|_| enter(SpanLabel::Compute)).collect();
            drop(guards);
        });
        assert_eq!(sink.spans.len(), MAX_DEPTH);
        assert_eq!(sink.truncated, 3);
        assert_eq!(sink.spans.last().unwrap().stack.depth(), 1, "root closes last");
    }

    #[test]
    fn disabled_sink_is_dropped_at_install() {
        assert!(install(Box::new(NullSpanSink)).is_none());
        assert!(!is_active());
        assert!(take().is_none());
    }

    #[test]
    fn install_returns_previous_sink() {
        let first: Arc<Mutex<VecSpanSink>> = Arc::default();
        assert!(install(Box::new(Arc::clone(&first))).is_none());
        let second: Arc<Mutex<VecSpanSink>> = Arc::default();
        let prev = install(Box::new(Arc::clone(&second)));
        assert!(prev.is_some());
        drop(take());
        assert!(!is_active());
    }

    #[test]
    fn clock_is_monotonic() {
        let a = clock_ns();
        let b = clock_ns();
        assert!(b >= a);
    }

    #[test]
    fn labels_round_trip_and_index_densely() {
        for (i, l) in SpanLabel::ALL.into_iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(SpanLabel::from_label(l.label()), Some(l));
        }
        assert_eq!(SpanLabel::from_label("nope"), None);
        assert!(SpanLabel::Shifted.is_kernel());
        assert!(!SpanLabel::Look.is_kernel());
    }

    #[test]
    fn stack_fold_and_ordering() {
        let a = SpanStack::of(&[SpanLabel::Trial, SpanLabel::Look]);
        let b = SpanStack::of(&[SpanLabel::Trial, SpanLabel::Look, SpanLabel::Sec]);
        assert_eq!(a.folded(), "trial;look");
        assert_eq!(b.folded(), "trial;look;sec");
        assert_eq!(b.leaf(), Some(SpanLabel::Sec));
        assert!(a < b, "prefix orders before its extension");
    }
}
