//! Campaign-level observability: trace-digest determinism across worker
//! counts, traced re-runs, and failure-trace dumping.

use apf_bench::engine::{
    trace_failures, AlgorithmSpec, Campaign, Engine, RunSpec, TRACE_EVENT_LIMIT,
};
use apf_scheduler::SchedulerKind;
use apf_trace::{PhaseKind, TraceSummary};

fn small_campaign() -> Campaign {
    let mut c = Campaign::new("obs", 11);
    c.add_trials(6, |i, _seed| {
        RunSpec::new(
            apf_patterns::symmetric_configuration(8, 4, 100 + i),
            apf_patterns::random_pattern(8, 200 + i),
        )
        .scheduler(SchedulerKind::RoundRobin)
        .budget(400_000)
    });
    c
}

/// The per-trial *event streams* — not just the merged statistics — must be
/// bit-identical for any worker count.
#[test]
fn event_stream_digests_identical_across_jobs() {
    let c = small_campaign();
    let r1 = Engine::new().jobs(1).trace_digests(true).run(&c);
    let r4 = Engine::new().jobs(4).trace_digests(true).run(&c);
    let d1 = r1.digests.expect("digests requested");
    let d4 = r4.digests.expect("digests requested");
    assert_eq!(d1.len(), c.len());
    assert_eq!(d1, d4, "trace digests must not depend on --jobs");
    assert_eq!(r1.stats, r4.stats, "merged statistics must not depend on --jobs");
    // Distinct trials must produce distinct streams (distinct seeds).
    assert!(d1.windows(2).any(|w| w[0] != w[1]) || d1.len() < 2);
}

/// Tracing a trial must not change its outcome, and the produced JSONL must
/// replay cleanly with bits/cycle ≤ 1 on the election phase (the paper's
/// 1-bit claim).
#[test]
fn traced_rerun_matches_and_respects_bit_budget() {
    let spec = RunSpec::new(
        apf_patterns::symmetric_configuration(8, 4, 100),
        apf_patterns::random_pattern(8, 200),
    )
    .scheduler(SchedulerKind::RoundRobin)
    .budget(400_000);
    let plain = spec.run();
    let traced = spec.run_traced(Vec::new(), TRACE_EVENT_LIMIT).expect("valid spec");
    assert_eq!(traced.result, plain, "tracing must not perturb the trial");
    assert!(!traced.truncated);
    assert!(traced.io_error.is_none());

    let text = String::from_utf8(traced.writer).expect("JSONL is UTF-8");
    let summary = TraceSummary::from_lines(text.lines()).expect("trace must parse");
    assert!(summary.is_clean(), "violations: {:?}", summary.violations);
    assert_eq!(summary.events, traced.events);
    assert_eq!(summary.cycles, plain.cycles);
    assert_eq!(summary.bits, plain.bits);
    assert_eq!(summary.formed, Some(plain.formed));
    let election = &summary.per_phase[PhaseKind::RsbElection.index()];
    assert!(election.cycles > 0, "symmetric start must hit the election");
    assert!(
        election.bits_per_cycle() <= 1.0,
        "paper claim: at most 1 bit per election cycle, got {}",
        election.bits_per_cycle()
    );
    assert!(summary.max_election_bits <= 1);
}

/// `trace_failures` dumps JSONL for failed trials and the dumps parse.
#[test]
fn trace_failures_dumps_failed_trials() {
    let mut c = Campaign::new("det fail", 13);
    c.add_trials(3, |i, _seed| {
        RunSpec::new(
            apf_patterns::symmetric_configuration(8, 4, 300 + i),
            apf_patterns::random_pattern(8, 400 + i),
        )
        .algorithm(AlgorithmSpec::Deterministic)
        .scheduler(SchedulerKind::RoundRobin)
        .budget(2_000)
    });
    let report = Engine::new().jobs(2).collect_results(true).run(&c);
    let results = report.results.expect("collection requested");
    assert!(results.iter().all(|r| !r.formed), "deterministic must stall on symmetric");

    let dir = std::env::temp_dir().join(format!("apf-obs-test-{}", std::process::id()));
    let written = trace_failures(&c, &results, &dir, 2).expect("traces written");
    assert_eq!(written.len(), 2, "capped at max_traces");
    for path in &written {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.ends_with("-failed.jsonl"), "unexpected name {name}");
        let text = std::fs::read_to_string(path).expect("trace readable");
        let summary = TraceSummary::from_lines(text.lines()).expect("trace must parse");
        assert_eq!(summary.formed, Some(false));
        assert!(summary.is_clean(), "violations: {:?}", summary.violations);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Worker accounting: busy time and trial counts cover the campaign.
#[test]
fn worker_stats_cover_all_trials() {
    let c = small_campaign();
    let report = Engine::new().jobs(2).run(&c);
    let counted: usize = report.workers.iter().map(|w| w.trials).sum();
    assert_eq!(counted, c.len());
    assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
    let (idx, wall) = report.longest_trial.expect("trials ran");
    assert!(idx < c.len());
    assert!(wall.as_nanos() > 0);
}
