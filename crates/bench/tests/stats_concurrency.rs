//! The statistics that back the service's `/metrics` scrape path:
//! [`StreamingAggregate`] merging must agree with sequential accumulation,
//! [`LiveStats`] snapshots must stay monotonic and internally consistent
//! while worker threads are publishing mid-campaign, and (property) merge
//! order must never change the percentiles an exact-mode aggregate reports.

use apf_bench::engine::{Campaign, Engine, LiveSnapshot, LiveStats, RunSpec, StreamingAggregate};
use apf_bench::RunResult;
use apf_scheduler::SchedulerKind;
use apf_trace::PhaseKind;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A synthetic trial result with deterministic, integer-valued statistics
/// (exact in f64, so chunked summation is order-insensitive).
fn result(i: u64) -> RunResult {
    let mut phase_cycles = [0u64; PhaseKind::COUNT];
    let mut phase_bits = [0u64; PhaseKind::COUNT];
    phase_cycles[(i as usize) % PhaseKind::COUNT] = 10 + i % 7;
    phase_bits[(i as usize) % PhaseKind::COUNT] = i % 3;
    RunResult {
        formed: !i.is_multiple_of(5),
        steps: 100 + i,
        cycles: 20 + (i * 13) % 50,
        bits: (i * 7) % 11,
        distance: (i % 9) as f64,
        phase_cycles,
        phase_bits,
    }
}

#[test]
fn chunked_merge_agrees_with_sequential_push() {
    let results: Vec<RunResult> = (0..200).map(result).collect();

    let mut sequential = StreamingAggregate::with_capacity(1024);
    for r in &results {
        sequential.push(r);
    }

    for chunk_size in [1, 3, 50, 200] {
        let mut merged = StreamingAggregate::with_capacity(1024);
        for chunk in results.chunks(chunk_size) {
            let mut part = StreamingAggregate::with_capacity(1024);
            for r in chunk {
                part.push(r);
            }
            merged.merge(&part);
        }
        // Counts and integer-valued sums are exact.
        assert_eq!(merged.runs(), sequential.runs(), "chunk {chunk_size}");
        assert_eq!(merged.formed(), sequential.formed(), "chunk {chunk_size}");
        for kind in PhaseKind::ALL {
            assert_eq!(
                merged.phase_cycles_total(kind),
                sequential.phase_cycles_total(kind),
                "chunk {chunk_size}, phase {kind:?}"
            );
            assert_eq!(
                merged.phase_bits_total(kind),
                sequential.phase_bits_total(kind),
                "chunk {chunk_size}, phase {kind:?}"
            );
        }
        // Welford merging reorders float ops; agree to relative 1e-12.
        let (a, b) = (merged.to_aggregate(), sequential.to_aggregate());
        assert!((a.mean_cycles - b.mean_cycles).abs() <= 1e-12 * b.mean_cycles.abs());
        assert!((a.mean_bits - b.mean_bits).abs() <= 1e-12 * b.mean_bits.abs().max(1.0));
        assert!((a.bits_per_cycle - b.bits_per_cycle).abs() <= 1e-12);
        // 1024-sample capacity > 200 pushes: percentiles are exact, so they
        // must agree bit-for-bit however the pushes were chunked.
        assert_eq!(a.median_cycles, b.median_cycles, "chunk {chunk_size}");
        assert_eq!(a.p95_cycles, b.p95_cycles, "chunk {chunk_size}");
    }
}

#[test]
fn merging_empty_aggregates_is_identity() {
    let mut agg = StreamingAggregate::with_capacity(16);
    for i in 0..10 {
        agg.push(&result(i));
    }
    let before = agg.clone();
    agg.merge(&StreamingAggregate::with_capacity(16));
    assert_eq!(agg, before, "merging an empty aggregate must change nothing");

    let mut empty = StreamingAggregate::with_capacity(16);
    empty.merge(&before);
    assert_eq!(empty.runs(), before.runs());
    assert_eq!(empty.to_aggregate().median_cycles, before.to_aggregate().median_cycles);
}

/// A small real campaign, uneven enough that workers interleave.
fn campaign(trials: u64) -> Campaign {
    let mut c = Campaign::new("stats-concurrency", 7);
    c.add_trials(trials, |i, _seed| {
        RunSpec::new(
            apf_patterns::asymmetric_configuration(7, 100 + i),
            apf_patterns::random_pattern(7, 200 + i),
        )
        .scheduler(SchedulerKind::RoundRobin)
        .budget(200_000)
    });
    c
}

#[test]
fn live_stats_snapshots_stay_consistent_under_concurrent_readers() {
    let live = Arc::new(LiveStats::default());
    let done = Arc::new(AtomicBool::new(false));

    let report = std::thread::scope(|s| {
        // The scrape path: readers hammer snapshot() while workers publish.
        let mut readers = Vec::new();
        for _ in 0..3 {
            let live = Arc::clone(&live);
            let done = Arc::clone(&done);
            readers.push(s.spawn(move || {
                let mut last = LiveSnapshot::default();
                let mut observed = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = live.snapshot();
                    // Monotonic: counters only grow.
                    assert!(snap.trials >= last.trials, "trials went backwards");
                    assert!(snap.formed >= last.formed, "formed went backwards");
                    assert!(snap.cycles >= last.cycles, "cycles went backwards");
                    assert!(snap.bits >= last.bits, "bits went backwards");
                    assert!(snap.busy >= last.busy, "busy went backwards");
                    // Internally consistent at every instant.
                    assert!(snap.formed <= snap.trials, "formed > trials");
                    observed = observed.max(snap.trials);
                    last = snap;
                    std::thread::yield_now();
                }
                observed
            }));
        }

        let report = Engine::new().jobs(4).live_stats(Arc::clone(&live)).run(&campaign(16));
        done.store(true, Ordering::Release);
        for r in readers {
            let observed = r.join().expect("reader panicked");
            assert!(observed <= 16, "reader saw more trials than the campaign has");
        }
        report
    });

    // The final snapshot agrees exactly with the merged report.
    let snap = live.snapshot();
    assert_eq!(snap.trials, report.stats.runs());
    assert_eq!(snap.formed, report.stats.formed());
    assert_eq!(snap.trials as usize, report.trials);
}

#[test]
fn worker_stats_account_for_every_trial() {
    let report = Engine::new().jobs(3).run(&campaign(12));
    assert_eq!(report.workers.len(), 3);
    let executed: usize = report.workers.iter().map(|w| w.trials).sum();
    assert_eq!(executed, report.trials, "per-worker trial counts must sum to the total");
    let busy: std::time::Duration = report.workers.iter().map(|w| w.busy).sum();
    assert!(busy >= report.longest_trial.map(|(_, d)| d).unwrap_or_default());
    let u = report.utilization();
    assert!((0.0..=1.0).contains(&u), "utilization out of range: {u}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Exact-mode percentiles are a pure function of the observation
    /// multiset: however the observations are partitioned and in whatever
    /// order the parts are merged, median and p95 match bit-for-bit.
    #[test]
    fn merge_order_never_changes_exact_percentiles(
        cycles in prop::collection::vec(1u64..100_000, 1..120),
        cut_a in any::<u16>(),
        cut_b in any::<u16>(),
    ) {
        let n = cycles.len();
        let mut cuts = [cut_a as usize % (n + 1), cut_b as usize % (n + 1)];
        cuts.sort_unstable();
        let parts = [&cycles[..cuts[0]], &cycles[cuts[0]..cuts[1]], &cycles[cuts[1]..]];

        let aggregate_of = |order: [usize; 3]| {
            let mut total = StreamingAggregate::with_capacity(256);
            for idx in order {
                let mut part = StreamingAggregate::with_capacity(256);
                for &c in parts[idx] {
                    part.push(&RunResult { formed: true, cycles: c, ..RunResult::default() });
                }
                total.merge(&part);
            }
            total.to_aggregate()
        };

        let forward = aggregate_of([0, 1, 2]);
        let rotated = aggregate_of([2, 0, 1]);
        let reversed = aggregate_of([2, 1, 0]);
        for other in [&rotated, &reversed] {
            prop_assert_eq!(forward.median_cycles, other.median_cycles);
            prop_assert_eq!(forward.p95_cycles, other.p95_cycles);
        }
    }
}
