//! Profiling must be *observationally free*: enabling span recording may
//! add timing columns, but every deterministic output — per-trial trace
//! digests, merged aggregates down to the last float ulp, collected
//! results — must be byte-identical to an unprofiled run. Spans travel a
//! channel structurally separate from [`apf_trace::TraceSink`], so this
//! holds by construction; these tests (and a `scripts/check.sh` gate over
//! the CLI) keep it true.

use apf_bench::engine::{Campaign, Engine, RunSpec};
use apf_bench::Aggregate;

fn campaign() -> Campaign {
    // Small on purpose (this digest-identity property is also gated over a
    // real CLI campaign in scripts/check.sh): quick-forming symmetric
    // instances, tight budget.
    let mut c = Campaign::new("span-digests", 2);
    c.add_trials(4, |i, _seed| {
        RunSpec::new(
            apf_patterns::symmetric_configuration(8, 4, 900 + i),
            apf_patterns::random_pattern(8, 1900 + i),
        )
        .budget(20_000)
    });
    c
}

/// Bitwise-comparable view of an [`Aggregate`] (floats via `to_bits`).
fn aggregate_bits(a: &Aggregate) -> Vec<u64> {
    vec![
        a.runs as u64,
        a.success.to_bits(),
        a.mean_cycles.to_bits(),
        a.median_cycles.to_bits(),
        a.p95_cycles.to_bits(),
        a.mean_bits.to_bits(),
        a.bits_per_cycle.to_bits(),
    ]
}

#[test]
fn profiling_changes_no_digest_and_no_aggregate_bit() {
    let c = campaign();
    let base = Engine::new().jobs(2).collect_results(true).trace_digests(true).run(&c);
    let profiled =
        Engine::new().jobs(2).collect_results(true).trace_digests(true).profile_spans(true).run(&c);

    assert!(base.profile.is_none(), "profile absent unless requested");
    let profile = profiled.profile.as_ref().expect("profile present when requested");
    assert!(profile.span_count() > 0, "sanity: the profiled run recorded spans");

    assert_eq!(base.digests, profiled.digests, "per-trial trace digests must be bit-identical");
    assert_eq!(base.results, profiled.results, "per-trial results must be identical");
    assert_eq!(
        aggregate_bits(&base.aggregate()),
        aggregate_bits(&profiled.aggregate()),
        "merged aggregates must match to the last float bit"
    );
}

#[test]
fn profile_sees_phases_and_kernels() {
    use apf_trace::SpanLabel;
    let c = campaign();
    let report = Engine::new().jobs(2).trace_digests(true).profile_spans(true).run(&c);
    let profile = report.profile.expect("profile requested");

    // Engine-level attribution: one Trial span per executed trial.
    let trials = profile.label(SpanLabel::Trial).expect("trial stats");
    assert_eq!(trials.count() as usize, report.trials);

    // Sim-level: every trial runs Look/Compute; the algorithm analyses
    // snapshots, so at least one geometry kernel fires.
    for label in [SpanLabel::Look, SpanLabel::Compute, SpanLabel::Sec] {
        let stats = profile.label(label).unwrap_or_else(|| panic!("{label:?} stats"));
        assert!(stats.count() > 0, "{label:?} spans must be recorded");
    }

    // The fold table renders non-empty collapsed-stacks lines.
    let mut folded = Vec::new();
    profile.write_folded(&mut folded).expect("fold write");
    let text = String::from_utf8(folded).expect("utf8");
    assert!(!text.is_empty());
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!stack.is_empty() && stack.split(';').all(|f| !f.is_empty()), "{line}");
        assert!(count.parse::<u64>().is_ok(), "{line}");
    }
}
