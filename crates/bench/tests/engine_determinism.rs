//! The engine's central guarantee: output is bit-identical for any worker
//! count. Per-trial results AND merged statistics from `--jobs 1` must equal
//! those from `--jobs 4` exactly — including every floating-point digit.

use apf_bench::engine::{AlgorithmSpec, Campaign, Engine, RunSpec, StreamingAggregate};
use apf_scheduler::SchedulerKind;

fn campaign() -> Campaign {
    let mut c = Campaign::new("determinism", 0xDE7E_4213);
    // A deliberately uneven mix (sizes, schedulers, algorithms) so workers
    // finish chunks out of order and any ordering bug shows.
    c.add_trials(12, |i, _seed| {
        let n = 7 + (i as usize % 3);
        let kind = match i % 3 {
            0 => SchedulerKind::RoundRobin,
            1 => SchedulerKind::Ssync,
            _ => SchedulerKind::Async,
        };
        RunSpec::new(
            apf_patterns::asymmetric_configuration(n, 100 + i),
            apf_patterns::random_pattern(n, 200 + i),
        )
        .scheduler(kind)
        .budget(150_000)
    });
    c.add_trials(4, |i, _seed| {
        RunSpec::new(
            apf_patterns::symmetric_configuration(8, 4, 300 + i),
            apf_patterns::random_pattern(8, 400 + i),
        )
        .scheduler(SchedulerKind::RoundRobin)
        .budget(150_000)
    });
    c.add_trials(2, |i, _seed| {
        RunSpec::new(
            apf_patterns::asymmetric_configuration(8, 500 + i),
            apf_patterns::random_pattern(8, 600 + i),
        )
        .algorithm(AlgorithmSpec::YyStyle)
        .scheduler(SchedulerKind::RoundRobin)
        .budget(150_000)
    });
    c
}

#[test]
fn jobs_1_and_jobs_4_are_bit_identical() {
    let c = campaign();
    let sequential = Engine::new().jobs(1).collect_results(true).run(&c);
    let parallel = Engine::new().jobs(4).collect_results(true).run(&c);

    assert_eq!(sequential.trials, c.len());
    assert_eq!(parallel.trials, c.len());

    // Per-trial results: same values, same order.
    let seq_results = sequential.results.as_ref().expect("collect_results was on");
    let par_results = parallel.results.as_ref().expect("collect_results was on");
    assert_eq!(seq_results.len(), par_results.len());
    for (i, (a, b)) in seq_results.iter().zip(par_results).enumerate() {
        assert_eq!(a, b, "trial {i} differs between jobs=1 and jobs=4");
    }

    // Merged streaming statistics: bitwise identical (PartialEq on f64
    // fields — no tolerance).
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(sequential.aggregate(), parallel.aggregate());
}

#[test]
fn repeated_runs_are_reproducible() {
    let c = campaign();
    let engine = Engine::new().jobs(3).collect_results(true);
    let a = engine.run(&c);
    let b = engine.run(&c);
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn replay_rebuilds_merged_stats_bit_for_bit() {
    // The distributed-merge contract: per-trial results in trial order,
    // refolded through StreamingAggregate::replay, must equal the engine's
    // merged statistics exactly — this is what lets a coordinator merge
    // remote shard results without perturbing a single ulp.
    let c = campaign();
    let report = Engine::new().jobs(4).collect_results(true).run(&c);
    let results = report.results.as_ref().expect("collect_results was on");
    let replayed = StreamingAggregate::replay(results, 1 << 16);
    assert_eq!(replayed, report.stats);
    // And with a thinning-small percentile cap, against an engine using the
    // same cap (exercises the stride-merge path).
    let capped = Engine::new().jobs(3).collect_results(true).percentile_cap(4).run(&c);
    let capped_results = capped.results.as_ref().expect("collect_results was on");
    assert_eq!(StreamingAggregate::replay(capped_results, 4), capped.stats);
}

#[test]
fn sharded_slices_concatenate_to_the_full_run() {
    // Shard execution parity: running slices [0,6), [6,7), [7,7), [7,18)
    // and concatenating per-trial outputs in shard order reproduces the
    // full run's results and digests exactly (including an empty shard and
    // a single-trial shard).
    let c = campaign();
    let engine = Engine::new().jobs(2).collect_results(true).trace_digests(true);
    let full = engine.run(&c);
    let mut results = Vec::new();
    let mut digests = Vec::new();
    for (lo, hi) in [(0, 6), (6, 7), (7, 7), (7, c.len())] {
        let shard = engine.run(&c.slice(lo, hi));
        assert_eq!(shard.trials, hi - lo);
        results.extend(shard.results.expect("collect_results was on"));
        digests.extend(shard.digests.expect("trace_digests was on"));
    }
    assert_eq!(Some(&results), full.results.as_ref());
    assert_eq!(Some(&digests), full.digests.as_ref());
    assert_eq!(StreamingAggregate::replay(&results, 1 << 16), full.stats);
}

#[test]
fn campaign_seed_changes_trial_outcomes() {
    let mut c1 = Campaign::new("s1", 1);
    let mut c2 = Campaign::new("s2", 2);
    for c in [&mut c1, &mut c2] {
        c.add_trials(4, |i, _seed| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(8, 4, 700 + i),
                apf_patterns::random_pattern(8, 800 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(150_000)
        });
    }
    let e = Engine::new().jobs(2).collect_results(true);
    let r1 = e.run(&c1);
    let r2 = e.run(&c2);
    // Same instances, different campaign seeds → different randomness. (The
    // cycle counts could coincide by luck for one trial, not for all.)
    assert_ne!(r1.results, r2.results);
}
