//! Experiment reports: printable tables plus machine-readable JSON.
//!
//! There is no serde in this workspace (offline build), so JSON is emitted
//! by hand — the shape is small and fixed: a suite object wrapping one
//! object per experiment with its table and throughput accounting.

use crate::print_table;
use crate::profile::{fmt_ns, ProfileRow};

/// One algorithm phase's share of an experiment's successful trials.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseLine {
    /// The phase label (e.g. `"rsb-election"`).
    pub label: String,
    /// Total LCM cycles spent in this phase.
    pub cycles: f64,
    /// Total random bits drawn in this phase.
    pub bits: f64,
}

impl PhaseLine {
    /// Bits per cycle within this phase (0 when no cycles).
    pub fn bits_per_cycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.bits / self.cycles
        }
    }
}

/// One experiment's finished table plus throughput accounting.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`"e1"` … `"e9"`).
    pub id: String,
    /// Human title (the table caption).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Table rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Monte Carlo trials executed (0 for timing-only experiments).
    pub trials: usize,
    /// Wall-clock seconds for the whole experiment.
    pub wall_s: f64,
    /// Per-phase cycle/bit totals over every successful trial of the
    /// experiment (empty for timing-only experiments).
    pub phases: Vec<PhaseLine>,
    /// Wall-time span statistics per phase/kernel label, hottest first
    /// (empty unless the experiment ran with `--profile`). Timing-noisy by
    /// nature; never part of the deterministic table.
    pub kernels: Vec<ProfileRow>,
    /// JSONL trace files written for failed/outlier trials (`--trace-out`).
    pub traces: Vec<String>,
}

impl ExperimentReport {
    /// Trials per wall-clock second (0 when no trials ran).
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall_s == 0.0 || self.trials == 0 {
            0.0
        } else {
            self.trials as f64 / self.wall_s
        }
    }

    /// Prints the table, the per-phase breakdown, and a timing footer.
    pub fn print(&self) {
        let header: Vec<&str> = self.header.iter().map(String::as_str).collect();
        print_table(&self.title, &header, &self.rows);
        if !self.phases.is_empty() {
            println!("per-phase (successful trials):");
            for p in &self.phases {
                println!(
                    "  {:<14} cycles {:>12.0}  bits {:>10.0}  bits/cycle {:.3}",
                    p.label,
                    p.cycles,
                    p.bits,
                    p.bits_per_cycle()
                );
            }
        }
        if !self.kernels.is_empty() {
            println!("span profile (wall time, hottest first):");
            for k in &self.kernels {
                println!(
                    "  {:<10} count {:>10}  mean {:>9}  p50 {:>9}  p95 {:>9}  max {:>9}  self {:>9}",
                    k.label.label(),
                    k.count,
                    fmt_ns(k.mean_ns),
                    fmt_ns(k.p50_ns as f64),
                    fmt_ns(k.p95_ns as f64),
                    fmt_ns(k.max_ns as f64),
                    fmt_ns(k.self_ns as f64),
                );
            }
        }
        for t in &self.traces {
            println!("trace: {t}");
        }
        if self.trials > 0 {
            println!(
                "[{}] {} trials in {:.2}s ({:.1} trials/s)",
                self.id,
                self.trials,
                self.wall_s,
                self.trials_per_sec()
            );
        } else {
            println!("[{}] completed in {:.2}s", self.id, self.wall_s);
        }
    }

    /// This report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        s.push_str(&format!("\"id\":{},", json_string(&self.id)));
        s.push_str(&format!("\"title\":{},", json_string(&self.title)));
        s.push_str(&format!("\"header\":{},", json_string_array(&self.header)));
        s.push_str("\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_string_array(row));
        }
        s.push_str("],");
        s.push_str(&format!("\"trials\":{},", self.trials));
        s.push_str(&format!("\"wall_s\":{},", json_f64(self.wall_s)));
        s.push_str(&format!("\"trials_per_sec\":{},", json_f64(self.trials_per_sec())));
        s.push_str("\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"phase\":{},\"cycles\":{},\"bits\":{},\"bits_per_cycle\":{}}}",
                json_string(&p.label),
                json_f64(p.cycles),
                json_f64(p.bits),
                json_f64(p.bits_per_cycle())
            ));
        }
        s.push_str("],");
        s.push_str("\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"label\":{},\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\
                 \"max_ns\":{},\"total_ns\":{},\"self_ns\":{}}}",
                json_string(k.label.label()),
                k.count,
                json_f64(k.mean_ns),
                k.p50_ns,
                k.p95_ns,
                k.max_ns,
                k.total_ns,
                k.self_ns
            ));
        }
        s.push_str("],");
        s.push_str(&format!("\"traces\":{}", json_string_array(&self.traces)));
        s.push('}');
        s
    }
}

/// The whole suite as one JSON document.
pub fn suite_json(reports: &[ExperimentReport], quick: bool, jobs: usize, wall_s: f64) -> String {
    let trials: usize = reports.iter().map(|r| r.trials).sum();
    let mut s = String::new();
    s.push('{');
    s.push_str(&format!("\"mode\":{},", json_string(if quick { "quick" } else { "full" })));
    s.push_str(&format!("\"jobs\":{jobs},"));
    s.push_str(&format!("\"trials\":{trials},"));
    s.push_str(&format!("\"wall_s\":{},", json_f64(wall_s)));
    s.push_str("\"experiments\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&r.to_json());
    }
    s.push_str("]}");
    s.push('\n');
    s
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json_string(item));
    }
    s.push(']');
    s
}

/// Finite floats print plainly; NaN/inf (not valid JSON) become null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport {
            id: "e1".into(),
            title: "title with \"quotes\" and ρ".into(),
            header: vec!["n".into(), "success".into()],
            rows: vec![vec!["8".into(), "1.00".into()]],
            trials: 16,
            wall_s: 2.0,
            phases: vec![PhaseLine { label: "rsb-election".into(), cycles: 100.0, bits: 40.0 }],
            kernels: vec![ProfileRow {
                label: apf_trace::SpanLabel::Shifted,
                count: 12,
                mean_ns: 1500.0,
                p50_ns: 2048,
                p95_ns: 4096,
                max_ns: 3900,
                total_ns: 18_000,
                self_ns: 18_000,
            }],
            traces: vec!["out/e1-trial0-failed.jsonl".into()],
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let j = sample().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"e1\""));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"trials\":16"));
        assert!(j.contains("\"trials_per_sec\":8"));
        assert!(j.contains("\"phases\":[{\"phase\":\"rsb-election\""));
        assert!(j.contains("\"bits_per_cycle\":0.4"));
        assert!(j.contains("\"kernels\":[{\"label\":\"shifted\",\"count\":12,\"mean_ns\":1500"));
        assert!(j.contains("\"traces\":[\"out/e1-trial0-failed.jsonl\"]"));
    }

    #[test]
    fn phase_line_rate_handles_zero_cycles() {
        let p = PhaseLine { label: "gather".into(), cycles: 0.0, bits: 0.0 };
        assert_eq!(p.bits_per_cycle(), 0.0);
    }

    #[test]
    fn suite_json_wraps_reports() {
        let j = suite_json(&[sample()], true, 4, 2.5);
        assert!(j.contains("\"mode\":\"quick\""));
        assert!(j.contains("\"jobs\":4"));
        assert!(j.contains("\"experiments\":[{"));
        assert!(j.ends_with("]}\n"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn zero_trials_report_has_zero_rate() {
        let mut r = sample();
        r.trials = 0;
        assert_eq!(r.trials_per_sec(), 0.0);
    }
}
