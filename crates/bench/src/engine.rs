//! Deterministic parallel trial engine.
//!
//! The E1–E9 suite needs orders of magnitude more Monte Carlo trials than a
//! sequential for-loop affords. This module provides:
//!
//! * [`RunSpec`] — a builder describing **one** reproducible simulation
//!   trial (instance, algorithm, scheduler, seed, budget, world options);
//! * [`Campaign`] — an explicit list of `RunSpec`s sharing a campaign seed,
//!   with per-trial seeds derived by a splitmix64-style function of
//!   `(campaign_seed, trial_index)`;
//! * [`Engine`] — a work-stealing executor over `std::thread::scope` (no
//!   third-party dependencies) whose output is **bit-identical** for any
//!   worker count;
//! * [`StreamingAggregate`] — mergeable Welford mean/variance plus a bounded
//!   percentile buffer, so campaigns aggregate without materializing every
//!   [`RunResult`].
//!
//! # Determinism
//!
//! Three properties make `--jobs 1` and `--jobs N` produce identical
//! output:
//!
//! 1. every trial's randomness comes only from its spec (`seed`, derived
//!    from the campaign seed and the trial **index**, never from scheduling);
//! 2. trials are claimed in fixed-size chunks whose boundaries depend only
//!    on the trial count, and each chunk aggregates locally;
//! 3. chunk aggregates are merged **in chunk order** after all workers
//!    join, so floating-point reduction order is fixed.

use crate::profile::SpanProfile;
use crate::{Aggregate, RunResult};
use apf_baselines::{DeterministicFormation, YyStyleFormation};
use apf_core::{validate_instance, BuildError, FormPattern};
use apf_geometry::{Point, Tol};
use apf_scheduler::{AsyncConfig, SchedulerKind};
use apf_sim::{RobotAlgorithm, World, WorldConfig};
use apf_trace::span::{self, SpanLabel};
use apf_trace::{HashSink, JsonlSink, PhaseKind, TraceSink};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Trials per work-queue chunk. Fixed (never derived from the worker count)
/// so chunk boundaries — and therefore merge order — are identical for any
/// `--jobs` value. One trial per chunk: individual trials are heavy (up to
/// millions of engine steps) and wildly uneven (early success vs. budget
/// exhaustion), so fine-grained claiming is what load-balances; the
/// per-chunk bookkeeping is noise by comparison.
const CHUNK: usize = 1;

/// Splitmix64 finalizer: the per-trial seed function.
///
/// `trial_seed(c, i)` is a high-quality hash of `(c, i)`, so trial streams
/// are decorrelated even for adjacent indices and campaign seeds.
pub fn trial_seed(campaign_seed: u64, trial_index: u64) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(trial_index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which algorithm a trial runs. A value, not a boxed trait object, so specs
/// stay `Send + Sync + Clone` and each worker instantiates its own
/// (stateless) algorithm.
#[derive(Debug, Clone, Copy)]
pub enum AlgorithmSpec {
    /// The paper's algorithm (`ψ_RSB` + `ψ_DPF`).
    FormPattern,
    /// Yamauchi–Yamashita-style baseline (continuous randomness).
    YyStyle,
    /// Deterministic baseline (cannot break symmetry).
    Deterministic,
    /// Any other algorithm, via a constructor function pointer.
    Custom(fn() -> Box<dyn RobotAlgorithm>),
}

impl AlgorithmSpec {
    fn instantiate(&self) -> Box<dyn RobotAlgorithm> {
        match self {
            AlgorithmSpec::FormPattern => Box::new(FormPattern::new()),
            AlgorithmSpec::YyStyle => Box::new(YyStyleFormation::new()),
            AlgorithmSpec::Deterministic => Box::new(DeterministicFormation::new()),
            AlgorithmSpec::Custom(make) => make(),
        }
    }
}

/// One reproducible simulation trial, built fluently:
///
/// ```
/// use apf_bench::engine::RunSpec;
/// use apf_scheduler::SchedulerKind;
///
/// let r = RunSpec::new(
///     apf_patterns::asymmetric_configuration(7, 5),
///     apf_patterns::random_pattern(7, 6),
/// )
/// .scheduler(SchedulerKind::RoundRobin)
/// .seed(1)
/// .budget(100_000)
/// .run();
/// assert!(r.formed);
/// ```
///
/// This replaces the old positional `run_formation(initial, pattern, kind,
/// seed, budget)` / `run_algorithm(..7 args..)` free functions.
#[derive(Debug, Clone)]
pub struct RunSpec {
    initial: Vec<Point>,
    pattern: Vec<Point>,
    algorithm: AlgorithmSpec,
    kind: SchedulerKind,
    async_config: Option<AsyncConfig>,
    seed: u64,
    budget: u64,
    config: WorldConfig,
    validate: Option<bool>,
}

impl RunSpec {
    /// Starts a spec from an instance. Defaults: the paper's algorithm, the
    /// ASYNC scheduler, seed 0, a 1 M-step budget, default world config.
    pub fn new(initial: Vec<Point>, pattern: Vec<Point>) -> Self {
        RunSpec {
            initial,
            pattern,
            algorithm: AlgorithmSpec::FormPattern,
            kind: SchedulerKind::Async,
            async_config: None,
            seed: 0,
            budget: 1_000_000,
            config: WorldConfig::default(),
            validate: None,
        }
    }

    /// Chooses the scheduler kind.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the ASYNC adversary knobs (ignored by other kinds).
    pub fn async_config(mut self, config: AsyncConfig) -> Self {
        self.async_config = Some(config);
        self
    }

    /// Seeds the robots' randomness, the frames, and the scheduler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the engine-step budget.
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the whole world config.
    pub fn world(mut self, config: WorldConfig) -> Self {
        self.config = config;
        self
    }

    /// Chooses the algorithm (default: the paper's [`AlgorithmSpec::FormPattern`]).
    pub fn algorithm(mut self, algorithm: AlgorithmSpec) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the minimum per-Move progress `δ`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Overrides the geometric tolerance.
    pub fn tol(mut self, tol: Tol) -> Self {
        self.config.tol = tol;
        self
    }

    /// Enables multiplicity detection (required for multiplicity patterns).
    pub fn multiplicity_detection(mut self, on: bool) -> Self {
        self.config.multiplicity_detection = on;
        self
    }

    /// Whether robots get random (rotated/scaled/mirrored) local frames.
    pub fn randomize_frames(mut self, on: bool) -> Self {
        self.config.randomize_frames = on;
        self
    }

    /// Records every configuration (for rendering; costly on long runs).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.config.record_trace = on;
        self
    }

    /// Forces instance validation on or off. Default: validate exactly when
    /// running the paper's algorithm (baselines are routinely pointed at
    /// instances outside the paper's preconditions).
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = Some(on);
        self
    }

    fn should_validate(&self) -> bool {
        self.validate.unwrap_or(matches!(self.algorithm, AlgorithmSpec::FormPattern))
    }

    /// Builds the world without running it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when validation is enabled and the instance
    /// violates the paper's preconditions.
    pub fn build_world(&self) -> Result<World, BuildError> {
        if self.should_validate() {
            validate_instance(&self.initial, &self.pattern, &self.config)?;
        }
        let scheduler_seed = self.seed.wrapping_add(0x5EED);
        let scheduler = match self.async_config {
            Some(cfg) => self.kind.build_with_async_config(scheduler_seed, cfg),
            None => self.kind.build(scheduler_seed),
        };
        Ok(World::new(
            self.initial.clone(),
            self.pattern.clone(),
            self.algorithm.instantiate(),
            scheduler,
            self.config,
            self.seed,
        ))
    }

    /// Runs the trial to completion or budget exhaustion.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when validation rejects the instance.
    pub fn try_run(&self) -> Result<RunResult, BuildError> {
        Ok(self.build_world()?.run(self.budget).into())
    }

    /// Runs the trial.
    ///
    /// # Panics
    ///
    /// Panics if the instance is invalid (the experiment generators only
    /// emit valid ones).
    pub fn run(&self) -> RunResult {
        // apf-lint: allow(panic-policy, panic-reachability) — documented panic (# Panics): generators emit valid instances, and a worker that does hit an invalid one must abort the campaign loudly
        self.try_run().expect("experiment instance must be valid")
    }

    /// Runs the trial with a trace sink installed on the world.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when validation rejects the instance.
    pub fn try_run_with_sink(&self, sink: Box<dyn TraceSink>) -> Result<RunResult, BuildError> {
        let mut world = self.build_world()?;
        world.set_sink(sink);
        Ok(world.run(self.budget).into())
    }

    /// Runs the trial with a [`HashSink`] installed and returns the result
    /// together with the FNV-1a digest of the serialized event stream.
    ///
    /// The digest equals `HashSink`'s over the exact JSONL byte stream, so
    /// it can be compared directly against a digest computed from a trace
    /// file's bytes — the contract the golden-trace conformance corpus
    /// (`apf-conformance`) checks on every CI run.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when validation rejects the instance.
    pub fn try_run_digest(&self) -> Result<(RunResult, u64), BuildError> {
        let sink = HashSink::new();
        let probe = sink.probe();
        let result = self.try_run_with_sink(Box::new(sink))?;
        Ok((result, probe.digest()))
    }

    /// Re-runs the trial streaming its full event trace as JSONL into
    /// `writer` (at most `limit` events; use [`TRACE_EVENT_LIMIT`] for the
    /// harness default). Because trials are deterministic in their spec,
    /// running a spec traced reproduces the untraced run event for event.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when validation rejects the instance.
    ///
    /// # Panics
    ///
    /// Panics if a tracing thread panicked while holding the sink lock
    /// (cannot happen: the sink is only used from this call).
    pub fn run_traced<W: Write + Send + 'static>(
        &self,
        writer: W,
        limit: u64,
    ) -> Result<TracedRun<W>, BuildError> {
        let mut world = self.build_world()?;
        let shared = Arc::new(Mutex::new(JsonlSink::with_limit(writer, limit)));
        world.set_sink(Box::new(Arc::clone(&shared)));
        let result: RunResult = world.run(self.budget).into();
        drop(world); // releases the world's handle; `shared` is now unique
        let sink = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| unreachable!("world dropped its sink handle"))
            .into_inner()
            // apf-lint: allow(panic-policy) — poisoning requires a panic that already failed the trial
            .expect("trace sink lock poisoned");
        Ok(TracedRun {
            result,
            events: sink.written(),
            truncated: sink.truncated(),
            io_error: sink.io_error(),
            writer: sink.into_inner(),
        })
    }
}

/// Default per-trace event cap for harness-written JSONL dumps: enough for
/// any formed trial, bounded for budget-exhausted ones (~20 MB of JSONL).
pub const TRACE_EVENT_LIMIT: u64 = 250_000;

/// The outcome of [`RunSpec::run_traced`]: the trial result plus the trace
/// accounting and the recovered writer.
#[derive(Debug)]
pub struct TracedRun<W> {
    /// The trial's distilled result (identical to an untraced run).
    pub result: RunResult,
    /// Events written to the JSONL stream.
    pub events: u64,
    /// Whether the event cap cut the stream short.
    pub truncated: bool,
    /// The first I/O error the sink hit, if any.
    pub io_error: Option<std::io::ErrorKind>,
    /// The writer, flushed and returned.
    pub writer: W,
}

/// Re-runs and dumps JSONL traces of a campaign's *failed* and *outlier*
/// trials into `dir` (`<campaign>-trial<idx>-failed.jsonl` /
/// `-outlier.jsonl`), at most `max_traces` files. An outlier is a formed
/// trial needing more than 4× the median cycles of formed trials.
///
/// `results` must be the campaign's per-trial results in trial order (run
/// the engine with [`Engine::collect_results`]).
///
/// # Errors
///
/// Returns the first filesystem or trace-stream I/O error.
///
/// # Panics
///
/// Panics if a spec's instance is invalid (it already ran once to produce
/// `results`).
pub fn trace_failures(
    campaign: &Campaign,
    results: &[RunResult],
    dir: &Path,
    max_traces: usize,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut formed_cycles: Vec<u64> =
        results.iter().filter(|r| r.formed).map(|r| r.cycles).collect();
    formed_cycles.sort_unstable();
    let median = formed_cycles.get(formed_cycles.len() / 2).copied().unwrap_or(0);
    let slug: String =
        campaign.name().chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();

    let mut written = Vec::new();
    for (idx, (spec, result)) in campaign.specs().iter().zip(results).enumerate() {
        if written.len() >= max_traces {
            break;
        }
        let label = if !result.formed {
            "failed"
        } else if median > 0 && result.cycles > 4 * median {
            "outlier"
        } else {
            continue;
        };
        let path = dir.join(format!("{slug}-trial{idx}-{label}.jsonl"));
        let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        let traced = spec
            .run_traced(file, TRACE_EVENT_LIMIT)
            // apf-lint: allow(panic-policy) — same spec built and ran earlier in this campaign
            .expect("spec already ran once; it must still build");
        if let Some(kind) = traced.io_error {
            return Err(std::io::Error::new(kind, format!("writing {}", path.display())));
        }
        traced.writer.into_inner().map_err(std::io::IntoInnerError::into_error)?;
        written.push(path);
    }
    Ok(written)
}

/// An explicit list of trials sharing a campaign seed.
#[derive(Debug, Clone)]
pub struct Campaign {
    name: String,
    seed: u64,
    specs: Vec<RunSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Campaign { name: name.into(), seed, specs: Vec::new() }
    }

    /// The campaign's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-trial seed this campaign derives for `trial_index`.
    pub fn seed_for(&self, trial_index: u64) -> u64 {
        trial_seed(self.seed, trial_index)
    }

    /// Appends one explicit spec (its seed is kept as-is).
    pub fn push(&mut self, spec: RunSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Appends `count` trials built by `make(trial_index, derived_seed)`.
    ///
    /// The returned spec's seed is **overwritten** with the derived seed, so
    /// per-trial randomness always follows the campaign-seed scheme; use
    /// `trial_index` for anything that must stay stable across campaign
    /// seeds (e.g. instance-generator seeds).
    pub fn add_trials(
        &mut self,
        count: u64,
        mut make: impl FnMut(u64, u64) -> RunSpec,
    ) -> &mut Self {
        for i in 0..count {
            let base = self.specs.len() as u64;
            let seed = self.seed_for(base);
            let mut spec = make(i, seed);
            spec.seed = seed;
            self.specs.push(spec);
        }
        self
    }

    /// The trial list, in index order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// The sub-campaign holding trials `lo..hi` (a shard), keeping the name
    /// and campaign seed. Specs are copied verbatim — their already-derived
    /// per-trial seeds come along — so running the slice produces results
    /// and digests bit-identical to the corresponding range of a full run.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.len()`.
    pub fn slice(&self, lo: usize, hi: usize) -> Campaign {
        assert!(lo <= hi && hi <= self.specs.len(), "invalid trial range {lo}..{hi}");
        Campaign { name: self.name.clone(), seed: self.seed, specs: self.specs[lo..hi].to_vec() }
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the campaign has no trials.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Welford running mean/variance (parallel-mergeable, Chan et al.).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Merges another accumulator into this one (order-sensitive in the
    /// last floating-point ulps — the engine always merges in chunk order).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Bounded percentile buffer: keeps at most `cap` samples by deterministic
/// stride thinning (every `stride`-th sample by arrival order survives), so
/// memory stays bounded on million-trial campaigns while percentiles remain
/// **exact** whenever the total sample count fits the cap.
#[derive(Debug, Clone, PartialEq)]
pub struct PercentileBuffer {
    cap: usize,
    stride: u64,
    seen: u64,
    samples: Vec<f64>,
}

impl PercentileBuffer {
    /// A buffer keeping at most `cap` samples (`cap ≥ 2`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 2, "percentile buffer needs capacity >= 2");
        PercentileBuffer { cap, stride: 1, seen: 0, samples: Vec::new() }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == self.cap {
                self.thin();
            }
            self.samples.push(x);
        }
        self.seen += 1;
    }

    fn thin(&mut self) {
        let mut keep = 0;
        for i in (0..self.samples.len()).step_by(2) {
            self.samples[keep] = self.samples[i];
            keep += 1;
        }
        self.samples.truncate(keep);
        self.stride *= 2;
    }

    /// Merges another buffer (samples of `other` follow `self` in arrival
    /// order; the engine merges chunks in index order, so the result is
    /// independent of the worker count).
    pub fn merge(&mut self, other: &PercentileBuffer) {
        let stride = self.stride.max(other.stride);
        let mut merged: Vec<f64> = Vec::with_capacity(self.samples.len() + other.samples.len());
        for (buf, own) in [(&*self, true), (other, false)] {
            let step = (stride / buf.stride) as usize;
            let _ = own;
            merged.extend(buf.samples.iter().step_by(step.max(1)));
        }
        self.samples = merged;
        self.stride = stride;
        self.seen += other.seen;
        while self.samples.len() > self.cap {
            self.thin();
        }
    }

    /// Number of retained samples.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }

    /// Total observations pushed.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Whether percentile queries are exact (no thinning has occurred).
    pub fn is_exact(&self) -> bool {
        self.stride == 1
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) under the same nearest-rank convention
    /// as [`Aggregate::of`]; 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v = self.samples.clone();
        v.sort_by(f64::total_cmp);
        v[((v.len() as f64 - 1.0) * q).round() as usize]
    }
}

/// Streaming replacement for collecting `Vec<RunResult>` + [`Aggregate::of`]:
/// O(1) per trial, mergeable, bounded memory.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingAggregate {
    runs: u64,
    formed: u64,
    cycles: Welford,
    bits: Welford,
    distance: Welford,
    total_cycles: f64,
    total_bits: f64,
    phase_cycles: [f64; PhaseKind::COUNT],
    phase_bits: [f64; PhaseKind::COUNT],
    cycle_percentiles: PercentileBuffer,
}

impl Default for StreamingAggregate {
    fn default() -> Self {
        Self::with_capacity(1 << 16)
    }
}

impl StreamingAggregate {
    /// An empty aggregate whose percentile buffer keeps `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        StreamingAggregate {
            runs: 0,
            formed: 0,
            cycles: Welford::default(),
            bits: Welford::default(),
            distance: Welford::default(),
            total_cycles: 0.0,
            total_bits: 0.0,
            phase_cycles: [0.0; PhaseKind::COUNT],
            phase_bits: [0.0; PhaseKind::COUNT],
            cycle_percentiles: PercentileBuffer::new(cap),
        }
    }

    /// Folds in one trial result. Means/percentiles cover **successful**
    /// runs, matching [`Aggregate::of`].
    pub fn push(&mut self, r: &RunResult) {
        self.runs += 1;
        if r.formed {
            self.formed += 1;
            self.cycles.push(r.cycles as f64);
            self.bits.push(r.bits as f64);
            self.distance.push(r.distance);
            self.total_cycles += r.cycles as f64;
            self.total_bits += r.bits as f64;
            for i in 0..PhaseKind::COUNT {
                self.phase_cycles[i] += r.phase_cycles[i] as f64;
                self.phase_bits[i] += r.phase_bits[i] as f64;
            }
            self.cycle_percentiles.push(r.cycles as f64);
        }
    }

    /// Merges another aggregate (the engine calls this in chunk order).
    pub fn merge(&mut self, other: &StreamingAggregate) {
        self.runs += other.runs;
        self.formed += other.formed;
        self.cycles.merge(&other.cycles);
        self.bits.merge(&other.bits);
        self.distance.merge(&other.distance);
        self.total_cycles += other.total_cycles;
        self.total_bits += other.total_bits;
        for i in 0..PhaseKind::COUNT {
            self.phase_cycles[i] += other.phase_cycles[i];
            self.phase_bits[i] += other.phase_bits[i];
        }
        self.cycle_percentiles.merge(&other.cycle_percentiles);
    }

    /// Trials folded in.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Successful trials.
    pub fn formed(&self) -> u64 {
        self.formed
    }

    /// Welford accumulator over successful runs' cycles.
    pub fn cycles(&self) -> &Welford {
        &self.cycles
    }

    /// Welford accumulator over successful runs' random bits.
    pub fn bits(&self) -> &Welford {
        &self.bits
    }

    /// Welford accumulator over successful runs' travel distance.
    pub fn distance(&self) -> &Welford {
        &self.distance
    }

    /// Total cycles successful runs spent in `kind`.
    pub fn phase_cycles_total(&self, kind: PhaseKind) -> f64 {
        self.phase_cycles[kind.index()]
    }

    /// Total random bits successful runs drew in `kind`.
    pub fn phase_bits_total(&self, kind: PhaseKind) -> f64 {
        self.phase_bits[kind.index()]
    }

    /// Per-phase `(kind, cycles, bits)` totals over successful runs, for
    /// phases that actually occurred.
    pub fn phase_summary(&self) -> impl Iterator<Item = (PhaseKind, f64, f64)> + '_ {
        PhaseKind::ALL
            .into_iter()
            .map(|k| (k, self.phase_cycles[k.index()], self.phase_bits[k.index()]))
            .filter(|&(_, c, b)| c > 0.0 || b > 0.0)
    }

    /// Rebuilds the merged campaign statistics [`Engine::run`] would report
    /// from per-trial results in trial order — **bit for bit**.
    ///
    /// Welford and percentile merges are order-sensitive in the last ulps,
    /// so a distributed coordinator cannot merge shard-*level* aggregates
    /// and match a single-process run. Instead it transports per-trial
    /// [`RunResult`]s and calls this, which reproduces the engine's exact
    /// fold: the same fixed chunking, a fresh per-chunk accumulator, and
    /// chunk merges in index order. Equality with `CampaignReport::stats`
    /// (for the same `percentile_cap`) is asserted by the engine tests.
    pub fn replay(results: &[RunResult], percentile_cap: usize) -> StreamingAggregate {
        let mut total = StreamingAggregate::with_capacity(percentile_cap);
        for chunk in results.chunks(CHUNK) {
            let mut agg = StreamingAggregate::with_capacity(percentile_cap);
            for r in chunk {
                agg.push(r);
            }
            total.merge(&agg);
        }
        total
    }

    /// The classic [`Aggregate`] view of this accumulator.
    pub fn to_aggregate(&self) -> Aggregate {
        Aggregate {
            runs: self.runs as usize,
            success: if self.runs == 0 { 0.0 } else { self.formed as f64 / self.runs as f64 },
            mean_cycles: self.cycles.mean(),
            median_cycles: self.cycle_percentiles.percentile(0.5),
            p95_cycles: self.cycle_percentiles.percentile(0.95),
            mean_bits: self.bits.mean(),
            bits_per_cycle: if self.total_cycles == 0.0 {
                0.0
            } else {
                self.total_bits / self.total_cycles
            },
        }
    }
}

/// Cooperative cancellation flag for a running campaign.
///
/// Cloning shares the flag. Workers check it **before claiming each trial**
/// and never abandon a claimed trial, so after [`CancelToken::cancel`] the
/// executed trials form a contiguous prefix `0..k` of the campaign in trial
/// order — partial aggregates, collected results, and digest vectors stay
/// well-formed and deterministic for whatever `k` the cancellation reached.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Shared live counters a running campaign updates after every trial, for
/// concurrent readers (progress displays, a `/metrics` scrape). All fields
/// are monotonic; [`LiveStats::snapshot`] reads them individually, so a
/// snapshot taken mid-update may be internally skewed by at most one trial —
/// fine for observability, never part of the deterministic output.
#[derive(Debug, Default)]
pub struct LiveStats {
    trials: AtomicU64,
    formed: AtomicU64,
    cycles: AtomicU64,
    bits: AtomicU64,
    busy_ns: AtomicU64,
}

impl LiveStats {
    /// Folds one completed trial into the counters. The engine calls this
    /// per trial; a coordinator folding remotely-executed shard results
    /// calls it too, so live progress reads the same either way.
    pub fn record(&self, r: &RunResult, busy: Duration) {
        self.trials.fetch_add(1, Ordering::Relaxed);
        if r.formed {
            self.formed.fetch_add(1, Ordering::Relaxed);
        }
        self.cycles.fetch_add(r.cycles, Ordering::Relaxed);
        self.bits.fetch_add(r.bits, Ordering::Relaxed);
        self.busy_ns.fetch_add(busy.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            trials: self.trials.load(Ordering::Relaxed),
            formed: self.formed.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            bits: self.bits.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
        }
    }
}

/// One reading of [`LiveStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Trials completed so far.
    pub trials: u64,
    /// Successful trials so far.
    pub formed: u64,
    /// Total cycles across completed trials (formed or not).
    pub cycles: u64,
    /// Total random bits across completed trials.
    pub bits: u64,
    /// Total worker time spent inside trials.
    pub busy: Duration,
}

/// One worker thread's execution accounting for a campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Trials this worker executed.
    pub trials: usize,
    /// Time this worker spent inside trials (excludes queue idling).
    pub busy: Duration,
}

/// A campaign's merged outcome plus throughput accounting.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign's name.
    pub name: String,
    /// Trials executed. Equal to [`CampaignReport::requested`] unless the
    /// run was cancelled, in which case the executed trials are the prefix
    /// `0..trials` of the campaign in trial order.
    pub trials: usize,
    /// Trials the campaign asked for.
    pub requested: usize,
    /// Whether a [`CancelToken`] stopped the run before completion.
    pub cancelled: bool,
    /// Worker threads used.
    pub jobs: usize,
    /// Merged streaming statistics.
    pub stats: StreamingAggregate,
    /// Per-trial results in trial order (only with
    /// [`Engine::collect_results`]).
    pub results: Option<Vec<RunResult>>,
    /// Per-trial trace digests in trial order (only with
    /// [`Engine::trace_digests`]).
    pub digests: Option<Vec<u64>>,
    /// Per-worker busy time and trial counts (timing-noisy; never part of
    /// the deterministic output).
    pub workers: Vec<WorkerStats>,
    /// The slowest single trial: `(trial index, wall time)`.
    pub longest_trial: Option<(usize, Duration)>,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Merged span profile (only with [`Engine::profile_spans`]). Timing
    /// data only — never part of the deterministic output.
    pub profile: Option<crate::profile::SpanProfile>,
}

impl CampaignReport {
    /// The classic aggregate view.
    pub fn aggregate(&self) -> Aggregate {
        self.stats.to_aggregate()
    }

    /// Trials per wall-clock second.
    pub fn trials_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.trials as f64 / s
        }
    }

    /// Fraction of worker wall-clock spent inside trials (1.0 = perfectly
    /// load-balanced, no idle tails).
    pub fn utilization(&self) -> f64 {
        let budget = self.wall.as_secs_f64() * self.workers.len() as f64;
        if budget == 0.0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        (busy / budget).min(1.0)
    }
}

/// The parallel executor. Construct once, reuse for many campaigns.
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: usize,
    collect: bool,
    digests: bool,
    progress: bool,
    profile: bool,
    percentile_cap: usize,
    cancel: Option<CancelToken>,
    live: Option<Arc<LiveStats>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine using every available core.
    pub fn new() -> Self {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Engine {
            jobs,
            collect: false,
            digests: false,
            progress: false,
            profile: false,
            percentile_cap: 1 << 16,
            cancel: None,
            live: None,
        }
    }

    /// Sets the worker count (0 = auto-detect).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            jobs
        };
        self
    }

    /// The resolved worker count (auto-detection already applied).
    pub fn effective_jobs(&self) -> usize {
        self.jobs
    }

    /// Also returns every per-trial [`RunResult`] (in trial order). Off by
    /// default: large campaigns aggregate without materializing results.
    pub fn collect_results(mut self, on: bool) -> Self {
        self.collect = on;
        self
    }

    /// Caps the percentile buffer (per chunk and merged).
    pub fn percentile_cap(mut self, cap: usize) -> Self {
        self.percentile_cap = cap;
        self
    }

    /// Also records a per-trial FNV digest of each trial's serialized event
    /// stream (in trial order). Two campaign runs produce equal digest
    /// vectors iff every trial's *trace*, not just its result, is
    /// bit-identical — the determinism check for any `--jobs` value.
    pub fn trace_digests(mut self, on: bool) -> Self {
        self.digests = on;
        self
    }

    /// Prints a live progress line to stderr while the campaign runs.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Also records wall-time spans (phases + analysis kernels) into a
    /// merged [`crate::profile::SpanProfile`] on the report. Spans travel a
    /// channel separate from trace events, so enabling this changes no
    /// digest and no aggregate byte — only timing columns appear.
    pub fn profile_spans(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Installs a cooperative [`CancelToken`]: workers check it before
    /// claiming each trial and stop claiming once it fires, so cancellation
    /// latency is bounded by one trial. Executed trials always form a
    /// contiguous prefix of the campaign (see [`CancelToken`]).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Publishes per-trial counters into `live` while the campaign runs, for
    /// concurrent readers such as a metrics scrape.
    pub fn live_stats(mut self, live: Arc<LiveStats>) -> Self {
        self.live = Some(live);
        self
    }

    /// Runs every trial of `campaign` and merges the outcome.
    ///
    /// The result — including every floating-point digit of the merged
    /// statistics and the order of collected results — is identical for any
    /// worker count (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if a spec's instance is invalid, or if a worker thread
    /// panics.
    pub fn run(&self, campaign: &Campaign) -> CampaignReport {
        let specs = campaign.specs();
        let n = specs.len();
        let nchunks = n.div_ceil(CHUNK);
        let workers = self.jobs.min(nchunks.max(1)).max(1);
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let finished = AtomicBool::new(false);
        let cancel = self.cancel.as_ref();
        let live = self.live.as_deref();
        let t0 = Instant::now();

        type ChunkData = (StreamingAggregate, Vec<RunResult>, Vec<u64>);
        type ChunkOut = (usize, ChunkData);
        type WorkerOut =
            (Vec<ChunkOut>, WorkerStats, Option<(usize, Duration)>, Option<SpanProfile>);
        let mut chunks: Vec<Option<ChunkData>> = Vec::new();
        chunks.resize_with(nchunks, || None);
        let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(workers);
        let mut longest_trial: Option<(usize, Duration)> = None;
        let mut profile = self.profile.then(SpanProfile::new);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let done = &done;
                    scope.spawn(move || -> WorkerOut {
                        let mut out: Vec<ChunkOut> = Vec::new();
                        let mut stats = WorkerStats::default();
                        let mut longest: Option<(usize, Duration)> = None;
                        // Span recording is thread-local: each worker
                        // installs a shared-handle profile once and reads
                        // it back when it runs out of chunks.
                        let profile_handle = self.profile.then(|| {
                            let handle = Arc::new(Mutex::new(SpanProfile::new()));
                            drop(span::install(Box::new(Arc::clone(&handle))));
                            handle
                        });
                        loop {
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                break;
                            }
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= nchunks {
                                break;
                            }
                            let lo = c * CHUNK;
                            let hi = (lo + CHUNK).min(n);
                            let mut agg = StreamingAggregate::with_capacity(self.percentile_cap);
                            let mut results =
                                if self.collect { Vec::with_capacity(hi - lo) } else { Vec::new() };
                            let mut digests =
                                if self.digests { Vec::with_capacity(hi - lo) } else { Vec::new() };
                            for (off, spec) in specs[lo..hi].iter().enumerate() {
                                let t_trial = Instant::now();
                                span::set_trial(Some((lo + off) as u64));
                                let _trial_span = span::enter(SpanLabel::Trial);
                                let r = if self.digests {
                                    let sink = HashSink::new();
                                    let probe = sink.probe();
                                    let r = spec
                                        .try_run_with_sink(Box::new(sink))
                                        // apf-lint: allow(panic-policy, panic-reachability) — generators emit valid instances (see run()); an invalid one must abort the campaign, not be skipped
                                        .expect("experiment instance must be valid");
                                    digests.push(probe.digest());
                                    r
                                } else {
                                    spec.run()
                                };
                                let dt = t_trial.elapsed();
                                stats.trials += 1;
                                stats.busy += dt;
                                if longest.is_none_or(|(_, best)| dt > best) {
                                    longest = Some((lo + off, dt));
                                }
                                if let Some(l) = live {
                                    l.record(&r, dt);
                                }
                                agg.push(&r);
                                if self.collect {
                                    results.push(r);
                                }
                                done.fetch_add(1, Ordering::Relaxed);
                            }
                            out.push((c, (agg, results, digests)));
                        }
                        let worker_profile = profile_handle.map(|handle| {
                            drop(span::take());
                            // apf-lint: allow(panic-policy, panic-reachability) — only this thread recorded into the handle, so the lock cannot be poisoned
                            handle.lock().expect("span profile lock").clone()
                        });
                        (out, stats, longest, worker_profile)
                    })
                })
                .collect();

            if self.progress {
                let done = &done;
                let finished = &finished;
                let name = campaign.name();
                scope.spawn(move || loop {
                    let d = done.load(Ordering::Relaxed);
                    let s = t0.elapsed().as_secs_f64();
                    let rate = if s > 0.0 { d as f64 / s } else { 0.0 };
                    eprint!(
                        "\r[{name}] {d}/{n} trials ({:.0}%) {:.1}/s  ",
                        100.0 * d as f64 / n.max(1) as f64,
                        rate
                    );
                    // `finished` (not `d >= n`) ends the loop so a cancelled
                    // campaign — which never reaches n — still stops it.
                    if d >= n || finished.load(Ordering::Acquire) {
                        eprintln!();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(200));
                });
            }

            for handle in handles {
                // apf-lint: allow(panic-policy, panic-reachability) — a worker panic must abort the campaign, not hang it; this join runs on the coordinating thread
                let joined = handle.join().expect("engine worker panicked");
                let (chunk_outs, stats, longest, worker_profile) = joined;
                for (c, data) in chunk_outs {
                    chunks[c] = Some(data);
                }
                worker_stats.push(stats);
                if let Some((idx, dt)) = longest {
                    if longest_trial.is_none_or(|(_, best)| dt > best) {
                        longest_trial = Some((idx, dt));
                    }
                }
                if let (Some(total), Some(wp)) = (profile.as_mut(), worker_profile.as_ref()) {
                    total.merge(wp);
                }
            }
            finished.store(true, Ordering::Release);
        });

        let cancelled = cancel.is_some_and(CancelToken::is_cancelled);
        let mut stats = StreamingAggregate::with_capacity(self.percentile_cap);
        let mut results = self.collect.then(|| Vec::with_capacity(n));
        let mut digests = self.digests.then(|| Vec::with_capacity(n));
        for slot in chunks {
            let Some((agg, chunk_results, chunk_digests)) = slot else {
                // Workers claim chunks in cursor order and never abandon a
                // claimed chunk, so completed chunks form a contiguous
                // prefix; the only way to see a gap is cancellation, and the
                // first gap ends the (well-formed) prefix merge.
                assert!(cancelled, "unclaimed chunk in an uncancelled campaign");
                break;
            };
            stats.merge(&agg);
            if let Some(all) = results.as_mut() {
                all.extend(chunk_results);
            }
            if let Some(all) = digests.as_mut() {
                all.extend(chunk_digests);
            }
        }

        CampaignReport {
            name: campaign.name().to_string(),
            trials: stats.runs() as usize,
            requested: n,
            cancelled,
            jobs: workers,
            stats,
            results,
            digests,
            workers: worker_stats,
            longest_trial,
            wall: t0.elapsed(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apf_scheduler::SchedulerKind;

    fn result(formed: bool, cycles: u64, bits: u64) -> RunResult {
        RunResult { formed, cycles, bits, distance: cycles as f64 * 0.5, ..RunResult::default() }
    }

    #[test]
    fn trial_seeds_are_decorrelated() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..8u64 {
            for i in 0..64u64 {
                assert!(seen.insert(trial_seed(c, i)), "seed collision at ({c}, {i})");
            }
        }
    }

    #[test]
    fn welford_matches_naive_moments() {
        let data = [3.0, 1.5, 8.25, -2.0, 4.0, 4.0, 19.5];
        let mut w = Welford::default();
        for x in data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 40.0).collect();
        let mut whole = Welford::default();
        for x in &data {
            whole.push(*x);
        }
        let mut left = Welford::default();
        let mut right = Welford::default();
        for x in &data[..37] {
            left.push(*x);
        }
        for x in &data[37..] {
            right.push(*x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_buffer_exact_under_cap() {
        let mut buf = PercentileBuffer::new(256);
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        for x in &data {
            buf.push(*x);
        }
        assert!(buf.is_exact());
        // Same nearest-rank convention as Aggregate::of.
        assert_eq!(buf.percentile(0.5), 50.0);
        assert_eq!(buf.percentile(0.95), 94.0);
        assert_eq!(buf.percentile(0.0), 0.0);
        assert_eq!(buf.percentile(1.0), 99.0);
    }

    #[test]
    fn percentile_buffer_thins_deterministically() {
        let mut a = PercentileBuffer::new(16);
        for i in 0..1000 {
            a.push(i as f64);
        }
        assert!(a.retained() <= 16);
        assert_eq!(a.seen(), 1000);
        // Approximate but sane: the thinned median is within 15% of truth.
        assert!((a.percentile(0.5) - 500.0).abs() < 150.0, "median {}", a.percentile(0.5));
    }

    #[test]
    fn streaming_aggregate_matches_aggregate_of() {
        let results: Vec<RunResult> =
            (0..200).map(|i| result(i % 5 != 0, (i * 31) % 400 + 1, (i * 7) % 50)).collect();
        let reference = Aggregate::of(&results);
        let mut streaming = StreamingAggregate::default();
        for r in &results {
            streaming.push(r);
        }
        let got = streaming.to_aggregate();
        assert_eq!(got.runs, reference.runs);
        assert!((got.success - reference.success).abs() < 1e-12);
        assert!((got.mean_cycles - reference.mean_cycles).abs() < 1e-9);
        assert_eq!(got.median_cycles, reference.median_cycles);
        assert_eq!(got.p95_cycles, reference.p95_cycles);
        assert!((got.mean_bits - reference.mean_bits).abs() < 1e-9);
        assert!((got.bits_per_cycle - reference.bits_per_cycle).abs() < 1e-12);
    }

    #[test]
    fn streaming_merge_matches_aggregate_of() {
        let results: Vec<RunResult> =
            (0..150).map(|i| result(i % 7 != 0, (i * 13) % 300 + 1, i % 40)).collect();
        let reference = Aggregate::of(&results);
        // Merge in fixed chunk order, as the engine does.
        let mut merged = StreamingAggregate::default();
        for chunk in results.chunks(16) {
            let mut part = StreamingAggregate::default();
            for r in chunk {
                part.push(r);
            }
            merged.merge(&part);
        }
        let got = merged.to_aggregate();
        assert_eq!(got.runs, reference.runs);
        assert!((got.mean_cycles - reference.mean_cycles).abs() < 1e-9);
        assert_eq!(got.median_cycles, reference.median_cycles);
        assert_eq!(got.p95_cycles, reference.p95_cycles);
        assert!((got.bits_per_cycle - reference.bits_per_cycle).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_zeroed() {
        let a = StreamingAggregate::default().to_aggregate();
        assert_eq!(a.runs, 0);
        assert_eq!(a.success, 0.0);
        assert_eq!(a.mean_cycles, 0.0);
    }

    #[test]
    fn runspec_smoke_formation() {
        let r = RunSpec::new(
            apf_patterns::asymmetric_configuration(7, 5),
            apf_patterns::random_pattern(7, 6),
        )
        .scheduler(SchedulerKind::RoundRobin)
        .seed(1)
        .budget(100_000)
        .run();
        assert!(r.formed);
        assert!(r.cycles > 0);
    }

    #[test]
    fn runspec_validation_rejects_small_instances() {
        let err = RunSpec::new(
            apf_patterns::asymmetric_configuration(5, 1),
            apf_patterns::random_pattern(5, 2),
        )
        .try_run()
        .unwrap_err();
        assert_eq!(err, BuildError::TooFewRobots(5));
    }

    #[test]
    fn runspec_baselines_skip_validation_by_default() {
        // 5 robots violate the paper's n >= 7 precondition, but baselines
        // may still run; the deterministic baseline just won't form.
        let r = RunSpec::new(
            apf_patterns::asymmetric_configuration(5, 1),
            apf_patterns::random_pattern(5, 2),
        )
        .algorithm(AlgorithmSpec::Deterministic)
        .scheduler(SchedulerKind::RoundRobin)
        .budget(100)
        .try_run();
        assert!(r.is_ok());
    }

    #[test]
    fn campaign_derives_and_overrides_seeds() {
        let mut c = Campaign::new("t", 99);
        c.add_trials(4, |i, seed| {
            assert_eq!(seed, trial_seed(99, i));
            RunSpec::new(Vec::new(), Vec::new()).seed(12345) // overwritten
        });
        for (i, spec) in c.specs().iter().enumerate() {
            assert_eq!(spec.seed, trial_seed(99, i as u64));
        }
    }

    fn smoke_campaign(trials: u64) -> Campaign {
        let mut c = Campaign::new("cancel-smoke", 7);
        c.add_trials(trials, |i, _seed| {
            RunSpec::new(
                apf_patterns::asymmetric_configuration(7, 10 + i),
                apf_patterns::random_pattern(7, 20 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(200_000)
        });
        c
    }

    #[test]
    fn cancel_before_run_yields_wellformed_empty_report() {
        let token = CancelToken::new();
        token.cancel();
        let c = smoke_campaign(5);
        let report = Engine::new()
            .jobs(2)
            .collect_results(true)
            .trace_digests(true)
            .cancel_token(token)
            .run(&c);
        assert!(report.cancelled);
        assert_eq!(report.requested, 5);
        assert_eq!(report.trials, 0);
        assert_eq!(report.stats.runs(), 0);
        assert_eq!(report.results.as_ref().unwrap().len(), 0);
        assert_eq!(report.digests.as_ref().unwrap().len(), 0);
        let agg = report.aggregate();
        assert_eq!(agg.runs, 0);
        assert_eq!(agg.success, 0.0);
    }

    #[test]
    fn cancel_mid_run_keeps_partial_aggregates_wellformed() {
        let c = smoke_campaign(8);
        let reference = Engine::new().jobs(1).collect_results(true).trace_digests(true).run(&c);
        let ref_digests = reference.digests.as_ref().unwrap();

        let token = CancelToken::new();
        let live = Arc::new(LiveStats::default());
        let report = std::thread::scope(|s| {
            let handle = {
                let token = token.clone();
                let live = Arc::clone(&live);
                let c = &c;
                s.spawn(move || {
                    Engine::new()
                        .jobs(2)
                        .collect_results(true)
                        .trace_digests(true)
                        .cancel_token(token)
                        .live_stats(live)
                        .run(c)
                })
            };
            while live.snapshot().trials < 2 {
                std::thread::sleep(Duration::from_micros(200));
            }
            token.cancel();
            handle.join().unwrap()
        });

        // The cancel raced trial completion, so the executed count is
        // anywhere in 2..=8 — but whatever it is, the report must be a
        // self-consistent prefix of the uncancelled reference run.
        let k = report.trials;
        assert!((2..=8).contains(&k), "executed {k} of 8");
        assert_eq!(report.requested, 8);
        assert_eq!(report.stats.runs() as usize, k);
        assert_eq!(report.results.as_ref().unwrap().len(), k);
        assert_eq!(report.digests.as_ref().unwrap().len(), k);
        assert_eq!(report.digests.as_ref().unwrap()[..], ref_digests[..k]);
        let agg = report.aggregate();
        assert_eq!(agg.runs, k);
        assert!((0.0..=1.0).contains(&agg.success));
        let snap = live.snapshot();
        assert_eq!(snap.trials as usize, k);
        assert_eq!(snap.formed, report.stats.formed());
        assert!(snap.busy >= Duration::ZERO);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let c = smoke_campaign(4);
        let plain = Engine::new().jobs(2).trace_digests(true).run(&c);
        let tokened =
            Engine::new().jobs(2).trace_digests(true).cancel_token(CancelToken::new()).run(&c);
        assert!(!tokened.cancelled);
        assert_eq!(tokened.trials, tokened.requested);
        assert_eq!(plain.digests, tokened.digests);
    }

    #[test]
    fn live_stats_totals_match_report() {
        let c = smoke_campaign(5);
        let live = Arc::new(LiveStats::default());
        let report = Engine::new().jobs(2).live_stats(Arc::clone(&live)).run(&c);
        let snap = live.snapshot();
        assert_eq!(snap.trials, 5);
        assert_eq!(snap.formed, report.stats.formed());
        let busy: Duration = report.workers.iter().map(|w| w.busy).sum();
        // Same trials timed with the same clock, accumulated in ns.
        assert!(snap.busy <= busy + Duration::from_millis(1));
    }

    #[test]
    fn engine_runs_small_campaign() {
        let mut c = Campaign::new("smoke", 7);
        c.add_trials(5, |i, _seed| {
            RunSpec::new(
                apf_patterns::asymmetric_configuration(7, 10 + i),
                apf_patterns::random_pattern(7, 20 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(200_000)
        });
        let report = Engine::new().jobs(2).collect_results(true).run(&c);
        assert_eq!(report.trials, 5);
        assert_eq!(report.stats.runs(), 5);
        assert_eq!(report.results.as_ref().unwrap().len(), 5);
        let agg = report.aggregate();
        assert!(agg.success > 0.0);
    }
}
