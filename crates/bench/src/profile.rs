//! Span aggregation: per-kernel latency histograms and collapsed-stacks
//! (flamegraph) folding.
//!
//! [`SpanProfile`] is the engine-side consumer of
//! [`apf_trace::span::SpanSink`]: each worker thread installs one, records
//! every span the trial emits, and the engine merges the per-worker
//! profiles (commutatively — per-label stats are order-free and the fold
//! map is keyed) into the campaign report. Nothing here touches digests:
//! spans arrive on a channel that is structurally separate from
//! [`apf_trace::TraceSink`], so a profiled campaign's digests and
//! aggregates are byte-identical to an unprofiled run (gated in
//! `scripts/check.sh`).
//!
//! Two views of the same data:
//!
//! * **Per-label stats** ([`LabelStats`]): count, Welford mean/std-dev of
//!   span inclusive time, exclusive/inclusive totals, min/max, and a
//!   log-2-bucket latency histogram (`bucket i` counts spans with
//!   `total_ns ∈ [2^i, 2^{i+1})`) from which approximate p50/p95 are read.
//! * **Folded stacks**: `stack;path;leaf  self_ns`, one line per distinct
//!   ancestry, in collapsed-stacks format — pipe into inferno or
//!   `flamegraph.pl` to render. Weights are *exclusive* nanoseconds so
//!   frame widths add up correctly in the flame.

use crate::engine::Welford;
use apf_trace::span::{Span, SpanLabel, SpanSink, SpanStack};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Number of log-2 latency buckets: bucket 39 holds spans of ~9.2 minutes
/// and up, far beyond any kernel this workspace times.
pub const BUCKETS: usize = 40;

/// Streaming statistics for one [`SpanLabel`].
#[derive(Debug, Clone)]
pub struct LabelStats {
    /// Welford accumulator over inclusive span time (nanoseconds).
    pub welford: Welford,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Total exclusive nanoseconds.
    pub self_ns: u64,
    /// Fastest span (inclusive), `u64::MAX` when empty.
    pub min_ns: u64,
    /// Slowest span (inclusive).
    pub max_ns: u64,
    /// `buckets[i]` counts spans with `total_ns ∈ [2^i, 2^{i+1})`.
    pub buckets: [u64; BUCKETS],
}

impl Default for LabelStats {
    fn default() -> Self {
        LabelStats {
            welford: Welford::default(),
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// Log-2 bucket index for a span duration.
fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

impl LabelStats {
    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    fn record(&mut self, span: &Span) {
        self.welford.push(span.total_ns as f64);
        self.total_ns = self.total_ns.saturating_add(span.total_ns);
        self.self_ns = self.self_ns.saturating_add(span.self_ns);
        self.min_ns = self.min_ns.min(span.total_ns);
        self.max_ns = self.max_ns.max(span.total_ns);
        self.buckets[bucket_of(span.total_ns)] += 1;
    }

    fn merge(&mut self, other: &LabelStats) {
        self.welford.merge(&other.welford);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.self_ns = self.self_ns.saturating_add(other.self_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Approximate quantile from the log-2 histogram: the upper bound
    /// (`2^{i+1}` ns) of the bucket where the cumulative count crosses
    /// `q · count`. Within a factor of 2 — plenty for "which kernel
    /// dominates" questions; use the fold file for exact attribution.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }
}

/// Aggregated span data: per-label histograms plus folded stacks.
///
/// Implements [`SpanSink`] so it can be installed directly (via
/// `Arc<Mutex<SpanProfile>>` for read-back). Merging is commutative, so
/// worker profiles can be combined in any order without affecting the
/// reported statistics beyond float ulps in the Welford means (the engine
/// merges in worker index order for exact reproducibility).
#[derive(Debug, Clone, Default)]
pub struct SpanProfile {
    labels: Vec<LabelStats>,
    folded: BTreeMap<SpanStack, FoldCell>,
    truncated: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct FoldCell {
    count: u64,
    self_ns: u64,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> SpanProfile {
        SpanProfile {
            labels: vec![LabelStats::default(); SpanLabel::COUNT],
            folded: BTreeMap::new(),
            truncated: 0,
        }
    }

    fn ensure_labels(&mut self) {
        if self.labels.is_empty() {
            self.labels = vec![LabelStats::default(); SpanLabel::COUNT];
        }
    }

    /// Statistics for one label.
    pub fn label(&self, label: SpanLabel) -> Option<&LabelStats> {
        self.labels.get(label.index())
    }

    /// Total spans recorded across all labels.
    pub fn span_count(&self) -> u64 {
        self.labels.iter().map(LabelStats::count).sum()
    }

    /// Spans dropped for exceeding the recorder's depth limit.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Folds `other` into `self` (commutative up to Welford float ulps).
    pub fn merge(&mut self, other: &SpanProfile) {
        self.ensure_labels();
        for (mine, theirs) in self.labels.iter_mut().zip(other.labels.iter()) {
            mine.merge(theirs);
        }
        for (stack, cell) in &other.folded {
            let mine = self.folded.entry(*stack).or_default();
            mine.count += cell.count;
            mine.self_ns = mine.self_ns.saturating_add(cell.self_ns);
        }
        self.truncated += other.truncated;
    }

    /// The leaf label of the fold entry with the most exclusive time — the
    /// flamegraph's widest frame, i.e. where the wall clock actually went.
    pub fn hottest_leaf(&self) -> Option<SpanLabel> {
        self.folded.iter().max_by_key(|(_, cell)| cell.self_ns).and_then(|(stack, _)| stack.leaf())
    }

    /// Writes collapsed-stacks lines (`a;b;c <self_ns>`), one per distinct
    /// ancestry, in deterministic (stack-ordered) order. The output is
    /// directly consumable by inferno / `flamegraph.pl`.
    pub fn write_folded<W: Write>(&self, mut w: W) -> io::Result<()> {
        for (stack, cell) in &self.folded {
            if stack.depth() == 0 {
                continue;
            }
            writeln!(w, "{} {}", stack.folded(), cell.self_ns)?;
        }
        Ok(())
    }

    /// Per-label table rows for labels that recorded at least one span,
    /// hottest (by exclusive time) first.
    pub fn rows(&self) -> Vec<ProfileRow> {
        let mut rows: Vec<ProfileRow> = SpanLabel::ALL
            .into_iter()
            .filter_map(|label| {
                let stats = self.label(label)?;
                if stats.count() == 0 {
                    return None;
                }
                Some(ProfileRow {
                    label,
                    count: stats.count(),
                    mean_ns: stats.welford.mean(),
                    p50_ns: stats.quantile_ns(0.50),
                    p95_ns: stats.quantile_ns(0.95),
                    max_ns: stats.max_ns,
                    total_ns: stats.total_ns,
                    self_ns: stats.self_ns,
                })
            })
            .collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.label.cmp(&b.label)));
        rows
    }

    /// Hand-rolled JSON object (the workspace ships no serde): per-label
    /// stats plus the fold table.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":");
        out.push_str(&self.span_count().to_string());
        out.push_str(",\"truncated\":");
        out.push_str(&self.truncated.to_string());
        out.push_str(",\"labels\":[");
        for (i, row) in self.rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\
                 \"max_ns\":{},\"total_ns\":{},\"self_ns\":{}}}",
                row.label.label(),
                row.count,
                row.mean_ns,
                row.p50_ns,
                row.p95_ns,
                row.max_ns,
                row.total_ns,
                row.self_ns,
            ));
        }
        out.push_str("],\"folded\":[");
        let mut first = true;
        for (stack, cell) in &self.folded {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"stack\":\"{}\",\"count\":{},\"self_ns\":{}}}",
                stack.folded(),
                cell.count,
                cell.self_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

impl SpanSink for SpanProfile {
    fn record_span(&mut self, span: &Span) {
        self.ensure_labels();
        if let Some(stats) = self.labels.get_mut(span.label.index()) {
            stats.record(span);
        }
        let cell = self.folded.entry(span.stack).or_default();
        cell.count += 1;
        cell.self_ns = cell.self_ns.saturating_add(span.self_ns);
    }

    fn record_truncated(&mut self) {
        self.truncated += 1;
    }
}

/// One rendered profile table row.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// What was timed.
    pub label: SpanLabel,
    /// Spans recorded.
    pub count: u64,
    /// Mean inclusive time (Welford), nanoseconds.
    pub mean_ns: f64,
    /// Approximate median inclusive time (log-2 bucket upper bound).
    pub p50_ns: u64,
    /// Approximate 95th percentile inclusive time.
    pub p95_ns: u64,
    /// Slowest span, nanoseconds.
    pub max_ns: u64,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Total exclusive nanoseconds.
    pub self_ns: u64,
}

/// Formats nanoseconds human-first: `412ns`, `3.1µs`, `99.9ms`, `2.50s`.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stack: &[SpanLabel], total_ns: u64, self_ns: u64) -> Span {
        let stack = SpanStack::of(stack);
        Span {
            label: stack.leaf().expect("non-empty stack"),
            stack,
            robot: None,
            trial: None,
            start_ns: 0,
            total_ns,
            self_ns,
        }
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_fold_and_stats() {
        let mut p = SpanProfile::new();
        p.record_span(&span(&[SpanLabel::Trial, SpanLabel::Look, SpanLabel::Sec], 100, 100));
        p.record_span(&span(&[SpanLabel::Trial, SpanLabel::Look, SpanLabel::Sec], 300, 300));
        p.record_span(&span(&[SpanLabel::Trial, SpanLabel::Look], 1000, 600));
        let sec = p.label(SpanLabel::Sec).unwrap();
        assert_eq!(sec.count(), 2);
        assert_eq!(sec.total_ns, 400);
        assert_eq!(sec.min_ns, 100);
        assert_eq!(sec.max_ns, 300);
        let mut out = Vec::new();
        p.write_folded(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "trial;look 600\ntrial;look;sec 400\n");
        assert_eq!(p.hottest_leaf(), Some(SpanLabel::Look));
        assert_eq!(p.span_count(), 3);
    }

    #[test]
    fn merge_is_commutative_on_integers() {
        let mut a = SpanProfile::new();
        a.record_span(&span(&[SpanLabel::Trial, SpanLabel::Shifted], 50, 50));
        let mut b = SpanProfile::new();
        b.record_span(&span(&[SpanLabel::Trial, SpanLabel::Shifted], 70, 70));
        b.record_span(&span(&[SpanLabel::Trial], 200, 80));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.span_count(), ba.span_count());
        let mut fa = Vec::new();
        let mut fb = Vec::new();
        ab.write_folded(&mut fa).unwrap();
        ba.write_folded(&mut fb).unwrap();
        assert_eq!(fa, fb, "fold tables are order-independent");
        assert_eq!(ab.hottest_leaf(), Some(SpanLabel::Shifted));
    }

    #[test]
    fn quantiles_come_from_buckets() {
        let mut s = LabelStats::default();
        for _ in 0..99 {
            s.record(&span(&[SpanLabel::Rho], 100, 100)); // bucket 6: [64,128)
        }
        s.record(&span(&[SpanLabel::Rho], 1_000_000, 1_000_000));
        assert_eq!(s.quantile_ns(0.50), 128);
        assert!(s.quantile_ns(0.999) >= 1 << 19);
        let empty = LabelStats::default();
        assert_eq!(empty.quantile_ns(0.5), 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut p = SpanProfile::new();
        p.record_span(&span(&[SpanLabel::Trial, SpanLabel::Views], 42, 42));
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"label\":\"views\""));
        assert!(j.contains("\"stack\":\"trial;views\""));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(412.0), "412ns");
        assert_eq!(fmt_ns(3_100.0), "3.1µs");
        assert_eq!(fmt_ns(99_900_000.0), "99.9ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50s");
    }
}
