//! The canonical campaign spec shared by every front end.
//!
//! [`CanonicalSpec`] is the single description of "a campaign of generated
//! trials" used by the HTTP service (`apf-serve`'s `JobSpec` wraps it), the
//! CLI (`apf-cli job-digest` / `spec-digest`), and the engine itself: each
//! trial becomes a [`RunSpec`] — the same per-trial type the conformance
//! corpus and fuzz reproducers use — via [`CanonicalSpec::trial_spec`].
//! Before this type existed, the CLI and the service each mirrored the E1
//! campaign construction by hand; now there is exactly one code path from a
//! spec to a campaign, so HTTP runs, CLI runs, and cache keys cannot drift.
//!
//! # Canonical form and content addressing
//!
//! [`CanonicalSpec::canonical_json`] renders the spec as compact JSON with
//! alphabetically sorted keys, every field present (defaults included), and
//! integer tokens exactly as Rust formats them. Because the form is a pure
//! function of the *values* — not of the submitted field order, whitespace,
//! or which optional fields were spelled out — two submissions describing
//! the same campaign render identically, and
//! [`CanonicalSpec::digest`] (FNV-1a 64 over the canonical bytes) is a
//! stable content address. The result cache in `apf-serve` keys on it, and
//! `GET /v1/spec-digest` exposes it for clients.
//!
//! The engine's determinism (see `engine` module docs) closes the loop:
//! equal digests ⇒ equal specs ⇒ bit-identical campaign results, which is
//! what makes answering a repeated spec from a cache sound at all.

use crate::engine::{trial_seed, Campaign, RunSpec};
use apf_scheduler::SchedulerKind;

/// Upper bound on trials per spec (bounds service queue memory and shard
/// payload sizes).
pub const MAX_TRIALS: u64 = 4096;
/// Upper bound on robots per trial.
pub const MAX_ROBOTS: usize = 64;
/// Upper bound on the per-trial step budget.
pub const MAX_BUDGET: u64 = 20_000_000;

/// Which instance generator seeds the initial configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generator {
    /// `apf_patterns::symmetric_configuration(n, rho, 1000 + i)` — the
    /// worst-case election path (experiment E1's generator).
    Symmetric,
    /// `apf_patterns::asymmetric_configuration(n, 1000 + i)`.
    Asymmetric,
}

impl Generator {
    /// Lowercase wire label.
    pub fn label(self) -> &'static str {
        match self {
            Generator::Symmetric => "symmetric",
            Generator::Asymmetric => "asymmetric",
        }
    }

    /// Parses a wire label.
    pub fn from_label(s: &str) -> Option<Generator> {
        match s {
            "symmetric" => Some(Generator::Symmetric),
            "asymmetric" => Some(Generator::Asymmetric),
            _ => None,
        }
    }
}

/// Lowercase wire label for a scheduler kind.
pub fn scheduler_label(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Fsync => "fsync",
        SchedulerKind::Ssync => "ssync",
        SchedulerKind::Async => "async",
        SchedulerKind::RoundRobin => "round_robin",
    }
}

/// Parses a scheduler wire label.
pub fn scheduler_from_label(s: &str) -> Option<SchedulerKind> {
    match s {
        "fsync" => Some(SchedulerKind::Fsync),
        "ssync" => Some(SchedulerKind::Ssync),
        "async" => Some(SchedulerKind::Async),
        "round_robin" => Some(SchedulerKind::RoundRobin),
        _ => None,
    }
}

/// A validated, canonicalizable campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalSpec {
    /// Campaign name (reports, metrics labels; part of the canonical form).
    pub name: String,
    /// Campaign seed (per-trial seeds derive from it).
    pub seed: u64,
    /// Number of trials.
    pub trials: u64,
    /// Robots per trial.
    pub n: usize,
    /// Symmetricity parameter for the symmetric generator.
    pub rho: usize,
    /// Initial-configuration generator.
    pub generator: Generator,
    /// Scheduler kind.
    pub scheduler: SchedulerKind,
    /// Per-trial engine-step budget.
    pub budget: u64,
}

impl Default for CanonicalSpec {
    /// The defaults mirror one row of experiment E1 in `--quick` mode:
    /// `n = 8`, `rho = 4`, 8 trials, campaign seed 1, RoundRobin, a 2 M-step
    /// budget.
    fn default() -> Self {
        CanonicalSpec {
            name: "job".to_string(),
            seed: 1,
            trials: 8,
            n: 8,
            rho: 4,
            generator: Generator::Symmetric,
            scheduler: SchedulerKind::RoundRobin,
            budget: 2_000_000,
        }
    }
}

impl CanonicalSpec {
    /// Range-checks the spec and verifies every trial's instance builds —
    /// after this, running the campaign cannot fail validation.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (servable as a 400 body).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.len() > 128 {
            return Err("\"name\" must be 1..=128 chars".to_string());
        }
        if self.trials == 0 || self.trials > MAX_TRIALS {
            return Err(format!("\"trials\" must be 1..={MAX_TRIALS}"));
        }
        if self.n < 7 || self.n > MAX_ROBOTS {
            return Err(format!("\"n\" must be 7..={MAX_ROBOTS} (the paper needs n >= 7)"));
        }
        if self.generator == Generator::Symmetric
            && (self.rho < 2 || !self.n.is_multiple_of(self.rho))
        {
            return Err(
                "\"rho\" must be >= 2 and divide \"n\" for the symmetric generator".to_string()
            );
        }
        if self.budget == 0 || self.budget > MAX_BUDGET {
            return Err(format!("\"budget\" must be 1..={MAX_BUDGET}"));
        }
        for i in 0..self.trials {
            self.trial_spec(i).build_world().map_err(|e| format!("trial {i} is invalid: {e}"))?;
        }
        Ok(())
    }

    /// Trial `i` of the campaign as a [`RunSpec`] — the per-trial spec type
    /// shared with the conformance corpus and fuzz reproducers. The
    /// generator offsets (`1000 + i`, `2000 + i`) and derived seed are
    /// functions of the *absolute* trial index, so any sub-range of trials
    /// reproduces exactly the specs a full run would build.
    pub fn trial_spec(&self, i: u64) -> RunSpec {
        let initial = match self.generator {
            Generator::Symmetric => {
                apf_patterns::symmetric_configuration(self.n, self.rho, 1000 + i)
            }
            Generator::Asymmetric => apf_patterns::asymmetric_configuration(self.n, 1000 + i),
        };
        RunSpec::new(initial, apf_patterns::random_pattern(self.n, 2000 + i))
            .scheduler(self.scheduler)
            .budget(self.budget)
            .seed(trial_seed(self.seed, i))
    }

    /// The spec's full campaign — identical construction to the historical
    /// CLI/E1 path (`Campaign::add_trials` with the same offsets).
    pub fn to_campaign(&self) -> Campaign {
        self.to_campaign_range(0, self.trials)
    }

    /// The campaign restricted to trials `lo..hi` (a shard). Trial `lo + k`
    /// of the returned campaign is bit-identical to trial `lo + k` of
    /// [`CanonicalSpec::to_campaign`], so per-trial results and digests of a
    /// shard equal the corresponding slice of a full run.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.trials`.
    pub fn to_campaign_range(&self, lo: u64, hi: u64) -> Campaign {
        assert!(lo <= hi && hi <= self.trials, "invalid trial range {lo}..{hi}");
        let mut c = Campaign::new(self.name.clone(), self.seed);
        for i in lo..hi {
            c.push(self.trial_spec(i));
        }
        c
    }

    /// The canonical compact-JSON form: alphabetically sorted keys, every
    /// field present, integer tokens exact. Submitting the same values in
    /// any field order yields byte-identical output.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"budget\":");
        out.push_str(&self.budget.to_string());
        out.push_str(",\"generator\":\"");
        out.push_str(self.generator.label());
        out.push_str("\",\"n\":");
        out.push_str(&self.n.to_string());
        out.push_str(",\"name\":\"");
        apf_trace::escape_json_str(&self.name, &mut out);
        out.push_str("\",\"rho\":");
        out.push_str(&self.rho.to_string());
        out.push_str(",\"scheduler\":\"");
        out.push_str(scheduler_label(self.scheduler));
        out.push_str("\",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"trials\":");
        out.push_str(&self.trials.to_string());
        out.push('}');
        out
    }

    /// The spec's content address: FNV-1a 64 over the canonical JSON bytes.
    /// Equal digests ⇒ equal canonical forms ⇒ (by engine determinism)
    /// bit-identical campaign results.
    pub fn digest(&self) -> u64 {
        fnv1a_64(self.canonical_json().as_bytes())
    }
}

/// FNV-1a 64 over a byte string (same parameters as the trace digest sink).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_campaign_matches_historical_add_trials_construction() {
        // The canonical path must *construct* campaigns exactly like the
        // historical CLI/serve mirror of E1: Campaign::add_trials with
        // derived seeds and the 1000+i / 2000+i generator offsets.
        let spec = CanonicalSpec::default();
        let c = spec.to_campaign();
        assert_eq!(c.len(), 8);
        let mut reference = Campaign::new("job", 1);
        reference.add_trials(8, |i, _seed| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(8, 4, 1000 + i),
                apf_patterns::random_pattern(8, 2000 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(2_000_000)
        });
        for (a, b) in c.specs().iter().zip(reference.specs()) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn range_specs_equal_full_campaign_slice() {
        let spec = CanonicalSpec { trials: 6, ..CanonicalSpec::default() };
        let full = spec.to_campaign();
        let shard = spec.to_campaign_range(2, 5);
        assert_eq!(shard.len(), 3);
        for (k, s) in shard.specs().iter().enumerate() {
            assert_eq!(format!("{s:?}"), format!("{:?}", full.specs()[2 + k]));
        }
        assert!(spec.to_campaign_range(3, 3).is_empty());
    }

    #[test]
    fn canonical_json_is_stable_and_digest_separates_specs() {
        let spec = CanonicalSpec::default();
        assert_eq!(
            spec.canonical_json(),
            "{\"budget\":2000000,\"generator\":\"symmetric\",\"n\":8,\"name\":\"job\",\
             \"rho\":4,\"scheduler\":\"round_robin\",\"seed\":1,\"trials\":8}"
        );
        let other = CanonicalSpec { seed: 2, ..CanonicalSpec::default() };
        assert_ne!(spec.digest(), other.digest());
        assert_eq!(spec.digest(), CanonicalSpec::default().digest());
    }

    #[test]
    fn validate_rejects_out_of_range_specs() {
        for (mutate, why) in [
            ((|s: &mut CanonicalSpec| s.trials = 0) as fn(&mut CanonicalSpec), "zero trials"),
            (|s| s.trials = MAX_TRIALS + 1, "too many trials"),
            (|s| s.n = 4, "too few robots"),
            (|s| s.rho = 3, "rho does not divide n"),
            (|s| s.budget = 0, "zero budget"),
            (|s| s.name = String::new(), "empty name"),
        ] {
            let mut spec = CanonicalSpec::default();
            mutate(&mut spec);
            assert!(spec.validate().is_err(), "accepted {why}");
        }
        assert!(CanonicalSpec::default().validate().is_ok());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
