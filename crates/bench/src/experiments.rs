//! The E1–E9 experiment suite (see DESIGN.md's experiment index).
//!
//! Every experiment regenerates one table of EXPERIMENTS.md; each maps to a
//! formal claim of the paper. `quick` mode shrinks seeds/sizes for CI.
//!
//! Trials are described by [`RunSpec`], grouped per table row into
//! [`Campaign`]s, and executed by the deterministic parallel [`Engine`] —
//! tables are bit-identical for any `--jobs` value. Instance generators are
//! seeded by the **trial index** (stable across campaign seeds); world/
//! scheduler randomness comes from the campaign-derived per-trial seed.

use crate::engine::{trace_failures, AlgorithmSpec, Campaign, Engine, RunSpec};
use crate::profile::SpanProfile;
use crate::report::{ExperimentReport, PhaseLine};
use crate::Aggregate;
use apf_geometry::{Configuration, Tol};
use apf_scheduler::{AsyncConfig, SchedulerKind};
use apf_trace::PhaseKind;
use std::path::PathBuf;
use std::time::Instant;

/// Traces dumped per campaign (row) under `--trace-out`: enough to debug a
/// failure mode without re-tracing an entire sweep.
const MAX_TRACES_PER_ROW: usize = 2;

/// Shared experiment context: CI-speed mode plus the engine's worker count.
#[derive(Debug, Clone, Default)]
pub struct ExpCtx {
    /// Shrink seeds/sizes for CI-speed runs.
    pub quick: bool,
    /// Engine worker threads (0 = auto-detect).
    pub jobs: usize,
    /// Dump JSONL traces of failed/outlier trials into this directory.
    pub trace_out: Option<PathBuf>,
    /// Print a live per-campaign progress line to stderr.
    pub progress: bool,
    /// Record wall-time spans and surface per-kernel latency tables.
    pub profile: bool,
}

impl ExpCtx {
    /// The engine every experiment runs on.
    pub fn engine(&self) -> Engine {
        Engine::new()
            .jobs(self.jobs)
            .progress(self.progress)
            .collect_results(self.trace_out.is_some())
            .profile_spans(self.profile)
    }

    fn seeds(&self, full: u64) -> u64 {
        if self.quick {
            8.min(full)
        } else {
            full
        }
    }
}

/// Per-experiment accounting shared by every table row: trial totals, the
/// per-phase cycle/bit breakdown, and `--trace-out` trace dumping.
struct Rows {
    engine: Engine,
    trace_out: Option<PathBuf>,
    trials: usize,
    phase_cycles: [f64; PhaseKind::COUNT],
    phase_bits: [f64; PhaseKind::COUNT],
    profile: SpanProfile,
    traces: Vec<String>,
}

impl Rows {
    fn new(ctx: &ExpCtx) -> Self {
        Rows {
            engine: ctx.engine(),
            trace_out: ctx.trace_out.clone(),
            trials: 0,
            phase_cycles: [0.0; PhaseKind::COUNT],
            phase_bits: [0.0; PhaseKind::COUNT],
            profile: SpanProfile::new(),
            traces: Vec::new(),
        }
    }

    /// Runs one campaign (one table row) and folds it into the accounting.
    fn row(&mut self, campaign: &Campaign) -> Aggregate {
        let report = self.engine.run(campaign);
        self.trials += report.trials;
        for kind in PhaseKind::ALL {
            self.phase_cycles[kind.index()] += report.stats.phase_cycles_total(kind);
            self.phase_bits[kind.index()] += report.stats.phase_bits_total(kind);
        }
        if let Some(p) = &report.profile {
            self.profile.merge(p);
        }
        if let (Some(dir), Some(results)) = (&self.trace_out, &report.results) {
            match trace_failures(campaign, results, dir, MAX_TRACES_PER_ROW) {
                Ok(paths) => {
                    self.traces.extend(paths.iter().map(|p| p.display().to_string()));
                }
                Err(e) => eprintln!("warning: cannot write traces for {}: {e}", campaign.name()),
            }
        }
        report.aggregate()
    }

    /// Finishes the experiment's report.
    fn report(
        self,
        id: &str,
        title: &str,
        header: &[&str],
        rows: Vec<Vec<String>>,
        t0: Instant,
    ) -> ExperimentReport {
        let phases = PhaseKind::ALL
            .into_iter()
            .filter(|k| self.phase_cycles[k.index()] > 0.0 || self.phase_bits[k.index()] > 0.0)
            .map(|k| PhaseLine {
                label: k.label().to_string(),
                cycles: self.phase_cycles[k.index()],
                bits: self.phase_bits[k.index()],
            })
            .collect();
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows,
            trials: self.trials,
            wall_s: t0.elapsed().as_secs_f64(),
            phases,
            kernels: self.profile.rows(),
            traces: self.traces,
        }
    }
}

/// An experiment entry point.
pub type ExpFn = fn(&ExpCtx) -> ExperimentReport;

/// Every experiment: `(id, one-line description, entry point)`.
pub const REGISTRY: &[(&str, &str, ExpFn)] = &[
    ("e1", "election terminates with probability 1 (Lemmas 1-2)", e1),
    ("e2", "random bits: 1 bit/cycle (ours) vs continuous draws (YY-style)", e2),
    ("e3", "arbitrary pattern formation across schedulers (Theorem 2)", e3),
    ("e4", "ASYNC adversary with pauses, sweeping minimum progress delta", e4),
    ("e5", "chirality independence: mirrored/rotated frames", e5),
    ("e6", "rho(I) does not divide rho(F): randomized vs deterministic", e6),
    ("e7", "multiplicity-point patterns with detection (Appendix C)", e7),
    ("e8", "adversary ablation: ASYNC pause probability", e8),
    ("e9", "analysis kernel cost (timing, no Monte Carlo trials)", e9),
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<ExpFn> {
    REGISTRY.iter().find(|(name, _, _)| *name == id).map(|&(_, _, f)| f)
}

/// E1 — Election terminates with probability 1 (Lemmas 1–2): cycles to
/// completion from worst-case symmetric configurations, sweeping `n`.
pub fn e1(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let sizes: &[(usize, usize)] =
        if ctx.quick { &[(8, 4), (12, 4)] } else { &[(8, 2), (8, 4), (12, 4), (16, 4), (20, 4)] };
    let mut rows = Vec::new();
    for &(n, rho) in sizes {
        let mut c = Campaign::new(format!("e1 n={n} rho={rho}"), 1);
        c.add_trials(ctx.seeds(16), |i, _seed| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(n, rho, 1000 + i),
                apf_patterns::random_pattern(n, 2000 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(2_000_000)
        });
        let a = rr.row(&c);
        rows.push(vec![
            n.to_string(),
            rho.to_string(),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.median_cycles),
            format!("{:.0}", a.p95_cycles),
            format!("{:.1}", a.mean_bits),
        ]);
    }
    rr.report(
        "e1",
        "E1: formation from symmetric configs (election path), probability-1 termination",
        &["n", "rho(I)", "success", "mean cyc", "med cyc", "p95 cyc", "mean bits"],
        rows,
        t0,
    )
}

/// E2 — Randomness budget: 1 bit/cycle (ours) vs continuous draws (YY-style).
pub fn e2(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    for &n in if ctx.quick { &[8usize, 12][..] } else { &[8usize, 12, 16, 24][..] } {
        let rho = if n % 4 == 0 { 4 } else { 3 };
        let spec = |i: u64| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(n, rho, 3000 + i),
                apf_patterns::random_pattern(n, 4000 + i),
            )
            .scheduler(SchedulerKind::RoundRobin)
            .budget(2_000_000)
        };
        let mut ours = Campaign::new(format!("e2 ours n={n}"), 2);
        ours.add_trials(ctx.seeds(16), |i, _| spec(i));
        let mut yy = Campaign::new(format!("e2 yy n={n}"), 2);
        yy.add_trials(ctx.seeds(16), |i, _| spec(i).algorithm(AlgorithmSpec::YyStyle));
        let ao = rr.row(&ours);
        let ay = rr.row(&yy);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", ao.success),
            format!("{:.1}", ao.mean_bits),
            format!("{:.3}", ao.bits_per_cycle),
            format!("{:.2}", ay.success),
            format!("{:.1}", ay.mean_bits),
            format!("{:.3}", ay.bits_per_cycle),
            format!(
                "{:.0}x",
                if ao.mean_bits > 0.0 { ay.mean_bits / ao.mean_bits } else { f64::NAN }
            ),
        ]);
    }
    rr.report(
        "e2",
        "E2: random bits — ours (1 bit/active election cycle) vs YY-style (64-bit continuous draws)",
        &["n", "ours ok", "ours bits", "ours b/cyc", "yy ok", "yy bits", "yy b/cyc", "ratio"],
        rows,
        t0,
    )
}

/// E3 — Theorem 2: any pattern from any configuration, across schedulers.
pub fn e3(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    let kinds = [
        SchedulerKind::Fsync,
        SchedulerKind::Ssync,
        SchedulerKind::Async,
        SchedulerKind::RoundRobin,
    ];
    for kind in kinds {
        for &(n, sym) in if ctx.quick {
            &[(8usize, false), (8, true)][..]
        } else {
            &[(8usize, false), (8, true), (16, false), (16, true)][..]
        } {
            let mut c = Campaign::new(format!("e3 {kind} n={n} sym={sym}"), 3);
            c.add_trials(ctx.seeds(10), |i, _| {
                let init = if sym {
                    apf_patterns::symmetric_configuration(n, 4, 5000 + i)
                } else {
                    apf_patterns::asymmetric_configuration(n, 5000 + i)
                };
                RunSpec::new(init, apf_patterns::random_pattern(n, 6000 + i))
                    .scheduler(kind)
                    .budget(600_000)
            });
            let a = rr.row(&c);
            rows.push(vec![
                kind.to_string(),
                n.to_string(),
                if sym { "ρ=4".into() } else { "ρ=1".to_string() },
                format!("{:.2}", a.success),
                format!("{:.0}", a.mean_cycles),
                format!("{:.0}", a.p95_cycles),
            ]);
        }
    }
    rr.report(
        "e3",
        "E3: arbitrary pattern formation across execution models (Theorem 2)",
        &["scheduler", "n", "sym", "success", "mean cyc", "p95 cyc"],
        rows,
        t0,
    )
}

/// E4 — Full asynchrony with pauses and tiny δ (non-rigid movement).
pub fn e4(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    let deltas: &[f64] = if ctx.quick { &[1e-1, 1e-3] } else { &[1.0, 1e-1, 1e-2, 1e-3, 1e-4] };
    for &delta in deltas {
        let mut c = Campaign::new(format!("e4 delta={delta:.0e}"), 4);
        c.add_trials(ctx.seeds(12), |i, _| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(8, 4, 7000 + i),
                apf_patterns::random_pattern(8, 8000 + i),
            )
            .scheduler(SchedulerKind::Async)
            .delta(delta)
            .budget(1_000_000)
        });
        let a = rr.row(&c);
        rows.push(vec![
            format!("{delta:.0e}"),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.p95_cycles),
            format!("{:.1}", a.mean_bits),
        ]);
    }
    rr.report(
        "e4",
        "E4: ASYNC adversary with pauses, sweeping the minimum-progress δ",
        &["delta", "success", "mean cyc", "p95 cyc", "mean bits"],
        rows,
        t0,
    )
}

/// E5 — Chirality independence: random per-robot handedness vs a shared
/// global frame; identical success for ours.
pub fn e5(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    for (label, randomize) in [("shared frame", false), ("random chirality", true)] {
        for &sym in &[false, true] {
            let mut c = Campaign::new(format!("e5 {label} sym={sym}"), 5);
            c.add_trials(ctx.seeds(16), |i, _| {
                let init = if sym {
                    apf_patterns::symmetric_configuration(8, 4, 9000 + i)
                } else {
                    apf_patterns::asymmetric_configuration(8, 9000 + i)
                };
                RunSpec::new(init, apf_patterns::random_pattern(8, 9500 + i))
                    .scheduler(SchedulerKind::RoundRobin)
                    .randomize_frames(randomize)
                    .budget(2_000_000)
            });
            let a = rr.row(&c);
            rows.push(vec![
                label.to_string(),
                if sym { "ρ=4".into() } else { "ρ=1".to_string() },
                format!("{:.2}", a.success),
                format!("{:.0}", a.mean_cycles),
            ]);
        }
    }
    rr.report(
        "e5",
        "E5: no chirality assumption — identical success with mirrored/rotated frames",
        &["frames", "sym", "success", "mean cyc"],
        rows,
        t0,
    )
}

/// E6 — Forming patterns with `ρ(I) ∤ ρ(F)`: impossible deterministically,
/// done by the randomized algorithm.
pub fn e6(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    for &(n, rho) in if ctx.quick {
        &[(8usize, 4usize)][..]
    } else {
        &[(8usize, 2usize), (8, 4), (9, 3), (12, 6)][..]
    } {
        let spec = |i: u64| {
            let init = apf_patterns::symmetric_configuration(n, rho, 11_000 + i);
            // ρ(F) = 1 targets: ρ(I) does not divide ρ(F).
            let pat = apf_patterns::random_pattern(n, 12_000 + i);
            RunSpec::new(init, pat).scheduler(SchedulerKind::RoundRobin)
        };
        let mut ours = Campaign::new(format!("e6 ours n={n}"), 6);
        ours.add_trials(ctx.seeds(12), |i, _| spec(i).budget(2_000_000));
        let mut det = Campaign::new(format!("e6 det n={n}"), 6);
        det.add_trials(ctx.seeds(12), |i, _| {
            // It stalls by design; a short budget proves it.
            spec(i).algorithm(AlgorithmSpec::Deterministic).budget(5_000)
        });
        let ao = rr.row(&ours);
        let ad = rr.row(&det);
        rows.push(vec![
            n.to_string(),
            rho.to_string(),
            "1".into(),
            format!("{:.2}", ao.success),
            format!("{:.2}", ad.success),
        ]);
    }
    rr.report(
        "e6",
        "E6: ρ(I) ∤ ρ(F) instances — randomized succeeds, deterministic cannot",
        &["n", "rho(I)", "rho(F)", "ours success", "deterministic success"],
        rows,
        t0,
    )
}

/// E7 — Patterns with multiplicity points (Section 5 / Appendix C).
pub fn e7(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    let cases: &[(usize, usize, bool)] = if ctx.quick {
        &[(8, 6, false), (8, 6, true)]
    } else {
        &[(8, 6, false), (8, 6, true), (12, 9, false), (12, 8, true)]
    };
    for &(n, distinct, center) in cases {
        let mut c = Campaign::new(format!("e7 n={n} distinct={distinct} center={center}"), 7);
        c.add_trials(ctx.seeds(12), |i, _| {
            let init = apf_patterns::asymmetric_configuration(n, 13_000 + i);
            let mut pat = apf_patterns::pattern_with_multiplicity(n, distinct, 14_000 + i);
            if center {
                // Relocate the heaviest multiplicity group to the pattern
                // center.
                let cfg = Configuration::new(pat.clone());
                let c = cfg.sec().center;
                let groups = cfg.multiplicity_groups(&Tol::default());
                // apf-lint: allow(panic-policy) — pattern_with_multiplicity always yields ≥ 1 group
                let (_, members) = groups.iter().max_by_key(|(_, m)| m.len()).unwrap().clone();
                for i in members {
                    pat[i] = c;
                }
            }
            RunSpec::new(init, pat)
                .scheduler(SchedulerKind::RoundRobin)
                .multiplicity_detection(true)
                .budget(2_000_000)
        });
        let a = rr.row(&c);
        rows.push(vec![
            n.to_string(),
            distinct.to_string(),
            if center { "yes".into() } else { "no".to_string() },
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
        ]);
    }
    rr.report(
        "e7",
        "E7: multiplicity-point patterns with multiplicity detection (Appendix C)",
        &["n", "distinct", "center mult", "success", "mean cyc"],
        rows,
        t0,
    )
}

/// E8 — Ablation of the adversary knobs (pause probability, batch size).
pub fn e8(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rr = Rows::new(ctx);
    let mut rows = Vec::new();
    let pauses: &[f64] = if ctx.quick { &[0.0, 0.5] } else { &[0.0, 0.25, 0.5, 0.75, 0.9] };
    for &pause in pauses {
        let mut c = Campaign::new(format!("e8 pause={pause:.2}"), 8);
        c.add_trials(ctx.seeds(12), |i, _| {
            RunSpec::new(
                apf_patterns::symmetric_configuration(8, 4, 15_000 + i),
                apf_patterns::random_pattern(8, 16_000 + i),
            )
            .scheduler(SchedulerKind::Async)
            .async_config(AsyncConfig { pause_prob: pause, ..AsyncConfig::default() })
            .budget(3_000_000)
        });
        let a = rr.row(&c);
        rows.push(vec![
            format!("{pause:.2}"),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.p95_cycles),
        ]);
    }
    rr.report(
        "e8",
        "E8: adversary ablation — pause probability of the ASYNC scheduler",
        &["pause prob", "success", "mean cyc", "p95 cyc"],
        rows,
        t0,
    )
}

/// E9 — Analysis-kernel scalability: wall time of the geometric kernels.
///
/// Timing-only (no Monte Carlo trials), so it stays sequential: parallel
/// workers would perturb the very wall-clock numbers it reports.
pub fn e9(ctx: &ExpCtx) -> ExperimentReport {
    let t0 = Instant::now();
    let mut rows = Vec::new();
    // Under --profile the kernels' own spans are collected too (the
    // kernels run on this thread, so the sink installs here).
    let profile_handle = ctx.profile.then(|| {
        let handle = std::sync::Arc::new(std::sync::Mutex::new(SpanProfile::new()));
        drop(apf_trace::span::install(Box::new(std::sync::Arc::clone(&handle))));
        handle
    });
    let sizes: &[usize] = if ctx.quick { &[8, 32] } else { &[8, 16, 32, 64, 128, 256] };
    for &n in sizes {
        let pts = apf_patterns::asymmetric_configuration(n.max(3), 17_000 + n as u64);
        let cfg = Configuration::new(pts.clone());
        let tol = Tol::default();
        let time = |f: &mut dyn FnMut()| {
            let reps = if ctx.quick { 5 } else { 20 };
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64 * 1e6
        };
        let t_sec = time(&mut || {
            let _ = apf_geometry::smallest_enclosing_circle(&pts);
        });
        let t_rho = time(&mut || {
            let _ = apf_geometry::symmetry::symmetricity(&cfg, cfg.sec().center, &tol);
        });
        let t_views = time(&mut || {
            let _ = apf_geometry::symmetry::ViewAnalysis::compute(&cfg, cfg.sec().center, &tol);
        });
        let t_reg = time(&mut || {
            let _ = apf_geometry::symmetry::regular_set_of(&cfg, &tol);
        });
        let t_shift = time(&mut || {
            let _ = apf_geometry::symmetry::find_shifted_regular(&cfg, &tol);
        });
        rows.push(vec![
            n.to_string(),
            format!("{t_sec:.1}"),
            format!("{t_rho:.1}"),
            format!("{t_views:.1}"),
            format!("{t_reg:.1}"),
            format!("{t_shift:.1}"),
        ]);
    }
    let kernels = profile_handle
        .map(|handle| {
            drop(apf_trace::span::take());
            // apf-lint: allow(panic-policy) — only this thread recorded into the handle, so the lock cannot be poisoned
            handle.lock().expect("span profile lock").rows()
        })
        .unwrap_or_default();
    ExperimentReport {
        id: "e9".into(),
        title: "E9: analysis kernel cost (µs per call, asymmetric configs)".into(),
        header: ["n", "SEC", "rho", "views", "reg(P)", "shifted"].map(String::from).to_vec(),
        rows,
        trials: 0,
        wall_s: t0.elapsed().as_secs_f64(),
        phases: Vec::new(),
        kernels,
        traces: Vec::new(),
    }
}

/// Runs every experiment in registry order.
pub fn run_all(ctx: &ExpCtx) -> Vec<ExperimentReport> {
    REGISTRY
        .iter()
        .map(|&(_, _, f)| {
            let report = f(ctx);
            report.print();
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = REGISTRY.iter().map(|(id, _, _)| *id).collect();
        assert_eq!(ids, ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn find_resolves_known_ids_only() {
        assert!(find("e1").is_some());
        assert!(find("e9").is_some());
        assert!(find("e10").is_none());
        assert!(find("all").is_none());
    }
}
