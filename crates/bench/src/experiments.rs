//! The E1–E9 experiment suite (see DESIGN.md's experiment index).
//!
//! Every experiment regenerates one table of EXPERIMENTS.md; each maps to a
//! formal claim of the paper. `quick` mode shrinks seeds/sizes for CI.

use crate::{print_table, run_algorithm, run_formation, Aggregate, RunResult};
use apf_baselines::{DeterministicFormation, YyStyleFormation};
use apf_core::SimulationBuilder;
use apf_geometry::{Configuration, Tol};
use apf_scheduler::{AsyncConfig, SchedulerKind};
use apf_sim::WorldConfig;
use std::time::Instant;

fn seeds(quick: bool, full: u64) -> std::ops::Range<u64> {
    0..(if quick { 8.min(full) } else { full })
}

/// E1 — Election terminates with probability 1 (Lemmas 1–2): cycles to
/// completion from worst-case symmetric configurations, sweeping `n`.
pub fn e1(quick: bool) {
    let sizes: &[(usize, usize)] =
        if quick { &[(8, 4), (12, 4)] } else { &[(8, 2), (8, 4), (12, 4), (16, 4), (20, 4)] };
    let mut rows = Vec::new();
    for &(n, rho) in sizes {
        let results: Vec<RunResult> = seeds(quick, 16)
            .map(|s| {
                run_formation(
                    apf_patterns::symmetric_configuration(n, rho, 1000 + s),
                    apf_patterns::random_pattern(n, 2000 + s),
                    SchedulerKind::RoundRobin,
                    s,
                    2_000_000,
                )
            })
            .collect();
        let a = Aggregate::of(&results);
        rows.push(vec![
            n.to_string(),
            rho.to_string(),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.median_cycles),
            format!("{:.0}", a.p95_cycles),
            format!("{:.1}", a.mean_bits),
        ]);
    }
    print_table(
        "E1: formation from symmetric configs (election path), probability-1 termination",
        &["n", "rho(I)", "success", "mean cyc", "med cyc", "p95 cyc", "mean bits"],
        &rows,
    );
}

/// E2 — Randomness budget: 1 bit/cycle (ours) vs continuous draws (YY-style).
pub fn e2(quick: bool) {
    let mut rows = Vec::new();
    for &n in if quick { &[8usize, 12][..] } else { &[8usize, 12, 16, 24][..] } {
        let rho = if n % 4 == 0 { 4 } else { 3 };
        let mut ours = Vec::new();
        let mut yy = Vec::new();
        for s in seeds(quick, 16) {
            let init = apf_patterns::symmetric_configuration(n, rho, 3000 + s);
            let pat = apf_patterns::random_pattern(n, 4000 + s);
            ours.push(run_formation(
                init.clone(),
                pat.clone(),
                SchedulerKind::RoundRobin,
                s,
                2_000_000,
            ));
            yy.push(run_algorithm(
                Box::new(YyStyleFormation::new()),
                init,
                pat,
                SchedulerKind::RoundRobin,
                s,
                2_000_000,
                WorldConfig::default(),
            ));
        }
        let ao = Aggregate::of(&ours);
        let ay = Aggregate::of(&yy);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", ao.success),
            format!("{:.1}", ao.mean_bits),
            format!("{:.3}", ao.bits_per_cycle),
            format!("{:.2}", ay.success),
            format!("{:.1}", ay.mean_bits),
            format!("{:.3}", ay.bits_per_cycle),
            format!(
                "{:.0}x",
                if ao.mean_bits > 0.0 { ay.mean_bits / ao.mean_bits } else { f64::NAN }
            ),
        ]);
    }
    print_table(
        "E2: random bits — ours (1 bit/active election cycle) vs YY-style (64-bit continuous draws)",
        &["n", "ours ok", "ours bits", "ours b/cyc", "yy ok", "yy bits", "yy b/cyc", "ratio"],
        &rows,
    );
}

/// E3 — Theorem 2: any pattern from any configuration, across schedulers.
pub fn e3(quick: bool) {
    let mut rows = Vec::new();
    let kinds =
        [SchedulerKind::Fsync, SchedulerKind::Ssync, SchedulerKind::Async, SchedulerKind::RoundRobin];
    for kind in kinds {
        for &(n, sym) in if quick {
            &[(8usize, false), (8, true)][..]
        } else {
            &[(8usize, false), (8, true), (16, false), (16, true)][..]
        } {
            let results: Vec<RunResult> = seeds(quick, 10)
                .map(|s| {
                    let init = if sym {
                        apf_patterns::symmetric_configuration(n, 4, 5000 + s)
                    } else {
                        apf_patterns::asymmetric_configuration(n, 5000 + s)
                    };
                    run_formation(
                        init,
                        apf_patterns::random_pattern(n, 6000 + s),
                        kind,
                        s,
                        600_000,
                    )
                })
                .collect();
            let a = Aggregate::of(&results);
            rows.push(vec![
                kind.to_string(),
                n.to_string(),
                if sym { "ρ=4".into() } else { "ρ=1".to_string() },
                format!("{:.2}", a.success),
                format!("{:.0}", a.mean_cycles),
                format!("{:.0}", a.p95_cycles),
            ]);
        }
    }
    print_table(
        "E3: arbitrary pattern formation across execution models (Theorem 2)",
        &["scheduler", "n", "sym", "success", "mean cyc", "p95 cyc"],
        &rows,
    );
}

/// E4 — Full asynchrony with pauses and tiny δ (non-rigid movement).
pub fn e4(quick: bool) {
    let mut rows = Vec::new();
    let deltas: &[f64] =
        if quick { &[1e-1, 1e-3] } else { &[1.0, 1e-1, 1e-2, 1e-3, 1e-4] };
    for &delta in deltas {
        let results: Vec<RunResult> = seeds(quick, 12)
            .map(|s| {
                let init = apf_patterns::symmetric_configuration(8, 4, 7000 + s);
                let pat = apf_patterns::random_pattern(8, 8000 + s);
                let mut world = SimulationBuilder::new(init, pat)
                    .scheduler(SchedulerKind::Async)
                    .seed(s)
                    .delta(delta)
                    .build()
                    .unwrap();
                world.run(1_000_000).into()
            })
            .collect();
        let a = Aggregate::of(&results);
        rows.push(vec![
            format!("{delta:.0e}"),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.p95_cycles),
            format!("{:.1}", a.mean_bits),
        ]);
    }
    print_table(
        "E4: ASYNC adversary with pauses, sweeping the minimum-progress δ",
        &["delta", "success", "mean cyc", "p95 cyc", "mean bits"],
        &rows,
    );
}

/// E5 — Chirality independence: random per-robot handedness vs a shared
/// global frame; identical success for ours.
pub fn e5(quick: bool) {
    let mut rows = Vec::new();
    for (label, randomize) in [("shared frame", false), ("random chirality", true)] {
        for &sym in &[false, true] {
            let results: Vec<RunResult> = seeds(quick, 16)
                .map(|s| {
                    let init = if sym {
                        apf_patterns::symmetric_configuration(8, 4, 9000 + s)
                    } else {
                        apf_patterns::asymmetric_configuration(8, 9000 + s)
                    };
                    let pat = apf_patterns::random_pattern(8, 9500 + s);
                    let mut world = SimulationBuilder::new(init, pat)
                        .scheduler(SchedulerKind::RoundRobin)
                        .seed(s)
                        .randomize_frames(randomize)
                        .build()
                        .unwrap();
                    world.run(2_000_000).into()
                })
                .collect();
            let a = Aggregate::of(&results);
            rows.push(vec![
                label.to_string(),
                if sym { "ρ=4".into() } else { "ρ=1".to_string() },
                format!("{:.2}", a.success),
                format!("{:.0}", a.mean_cycles),
            ]);
        }
    }
    print_table(
        "E5: no chirality assumption — identical success with mirrored/rotated frames",
        &["frames", "sym", "success", "mean cyc"],
        &rows,
    );
}

/// E6 — Forming patterns with `ρ(I) ∤ ρ(F)`: impossible deterministically,
/// done by the randomized algorithm.
pub fn e6(quick: bool) {
    let mut rows = Vec::new();
    for &(n, rho) in if quick { &[(8usize, 4usize)][..] } else { &[(8usize, 2usize), (8, 4), (9, 3), (12, 6)][..] } {
        let mut ours = Vec::new();
        let mut det = Vec::new();
        for s in seeds(quick, 12) {
            let init = apf_patterns::symmetric_configuration(n, rho, 11_000 + s);
            // ρ(F) = 1 targets: ρ(I) does not divide ρ(F).
            let pat = apf_patterns::random_pattern(n, 12_000 + s);
            ours.push(run_formation(
                init.clone(),
                pat.clone(),
                SchedulerKind::RoundRobin,
                s,
                2_000_000,
            ));
            det.push(run_algorithm(
                Box::new(DeterministicFormation::new()),
                init,
                pat,
                SchedulerKind::RoundRobin,
                s,
                5_000, // it stalls by design; a short budget proves it
                WorldConfig::default(),
            ));
        }
        let ao = Aggregate::of(&ours);
        let ad = Aggregate::of(&det);
        rows.push(vec![
            n.to_string(),
            rho.to_string(),
            "1".into(),
            format!("{:.2}", ao.success),
            format!("{:.2}", ad.success),
        ]);
    }
    print_table(
        "E6: ρ(I) ∤ ρ(F) instances — randomized succeeds, deterministic cannot",
        &["n", "rho(I)", "rho(F)", "ours success", "deterministic success"],
        &rows,
    );
}

/// E7 — Patterns with multiplicity points (Section 5 / Appendix C).
pub fn e7(quick: bool) {
    let mut rows = Vec::new();
    let cases: &[(usize, usize, bool)] = if quick {
        &[(8, 6, false), (8, 6, true)]
    } else {
        &[(8, 6, false), (8, 6, true), (12, 9, false), (12, 8, true)]
    };
    for &(n, distinct, center) in cases {
        let results: Vec<RunResult> = seeds(quick, 12)
            .map(|s| {
                let init = apf_patterns::asymmetric_configuration(n, 13_000 + s);
                let mut pat = apf_patterns::pattern_with_multiplicity(n, distinct, 14_000 + s);
                if center {
                    // Relocate the heaviest multiplicity group to the pattern
                    // center.
                    let cfg = Configuration::new(pat.clone());
                    let c = cfg.sec().center;
                    let groups = cfg.multiplicity_groups(&Tol::default());
                    let (_, members) =
                        groups.iter().max_by_key(|(_, m)| m.len()).unwrap().clone();
                    for i in members {
                        pat[i] = c;
                    }
                }
                let mut world = SimulationBuilder::new(init, pat)
                    .scheduler(SchedulerKind::RoundRobin)
                    .seed(s)
                    .multiplicity_detection(true)
                    .build()
                    .unwrap();
                world.run(2_000_000).into()
            })
            .collect();
        let a = Aggregate::of(&results);
        rows.push(vec![
            n.to_string(),
            distinct.to_string(),
            if center { "yes".into() } else { "no".to_string() },
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
        ]);
    }
    print_table(
        "E7: multiplicity-point patterns with multiplicity detection (Appendix C)",
        &["n", "distinct", "center mult", "success", "mean cyc"],
        &rows,
    );
}

/// E8 — Ablation of the adversary knobs (pause probability, batch size).
pub fn e8(quick: bool) {
    let mut rows = Vec::new();
    let pauses: &[f64] = if quick { &[0.0, 0.5] } else { &[0.0, 0.25, 0.5, 0.75, 0.9] };
    for &pause in pauses {
        let results: Vec<RunResult> = seeds(quick, 12)
            .map(|s| {
                let cfg = AsyncConfig { pause_prob: pause, ..AsyncConfig::default() };
                let mut w = apf_sim::World::new(
                    apf_patterns::symmetric_configuration(8, 4, 15_000 + s),
                    apf_patterns::random_pattern(8, 16_000 + s),
                    Box::new(apf_core::FormPattern::new()),
                    SchedulerKind::Async.build_with_async_config(s, cfg),
                    WorldConfig::default(),
                    s,
                );
                w.run(3_000_000).into()
            })
            .collect();
        let a = Aggregate::of(&results);
        rows.push(vec![
            format!("{pause:.2}"),
            format!("{:.2}", a.success),
            format!("{:.0}", a.mean_cycles),
            format!("{:.0}", a.p95_cycles),
        ]);
    }
    print_table(
        "E8: adversary ablation — pause probability of the ASYNC scheduler",
        &["pause prob", "success", "mean cyc", "p95 cyc"],
        &rows,
    );
}

/// E9 — Analysis-kernel scalability: wall time of the geometric kernels.
pub fn e9(quick: bool) {
    let mut rows = Vec::new();
    let sizes: &[usize] = if quick { &[8, 32] } else { &[8, 16, 32, 64, 128, 256] };
    for &n in sizes {
        let pts = apf_patterns::asymmetric_configuration(n.max(3), 17_000 + n as u64);
        let cfg = Configuration::new(pts.clone());
        let tol = Tol::default();
        let time = |f: &mut dyn FnMut()| {
            let reps = if quick { 5 } else { 20 };
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() / reps as f64 * 1e6
        };
        let t_sec = time(&mut || {
            let _ = apf_geometry::smallest_enclosing_circle(&pts);
        });
        let t_rho = time(&mut || {
            let _ = apf_geometry::symmetry::symmetricity(&cfg, cfg.sec().center, &tol);
        });
        let t_views = time(&mut || {
            let _ = apf_geometry::symmetry::ViewAnalysis::compute(&cfg, cfg.sec().center, &tol);
        });
        let t_reg = time(&mut || {
            let _ = apf_geometry::symmetry::regular_set_of(&cfg, &tol);
        });
        let t_shift = time(&mut || {
            let _ = apf_geometry::symmetry::find_shifted_regular(&cfg, &tol);
        });
        rows.push(vec![
            n.to_string(),
            format!("{t_sec:.1}"),
            format!("{t_rho:.1}"),
            format!("{t_views:.1}"),
            format!("{t_reg:.1}"),
            format!("{t_shift:.1}"),
        ]);
    }
    print_table(
        "E9: analysis kernel cost (µs per call, asymmetric configs)",
        &["n", "SEC", "rho", "views", "reg(P)", "shifted"],
        &rows,
    );
}

/// Runs every experiment.
pub fn all(quick: bool) {
    e1(quick);
    e2(quick);
    e3(quick);
    e4(quick);
    e5(quick);
    e6(quick);
    e7(quick);
    e8(quick);
    e9(quick);
}
