//! Experiment harness: regenerates every experiment table (E1–E9).
//!
//! ```text
//! harness [--quick] [e1 e2 ... | all]
//! ```
//!
//! `--quick` shrinks seed counts and sweeps for CI-speed runs; the default
//! runs the full EXPERIMENTS.md configuration.

use apf_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let picks: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let picks: Vec<&str> = if picks.is_empty() || picks.contains(&"all") {
        vec!["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"]
    } else {
        picks
    };
    println!(
        "APF experiment harness ({} mode) — experiments: {}",
        if quick { "quick" } else { "full" },
        picks.join(", ")
    );
    for p in picks {
        match p {
            "e1" => experiments::e1(quick),
            "e2" => experiments::e2(quick),
            "e3" => experiments::e3(quick),
            "e4" => experiments::e4(quick),
            "e5" => experiments::e5(quick),
            "e6" => experiments::e6(quick),
            "e7" => experiments::e7(quick),
            "e8" => experiments::e8(quick),
            "e9" => experiments::e9(quick),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}
