//! Experiment harness: regenerates every experiment table (E1–E9).
//!
//! ```text
//! harness [--quick] [--jobs N] [--json PATH] [--trace-out DIR] [--progress]
//!         [--profile] [--list] [e1 e2 ... | all]
//! ```
//!
//! * `--quick` shrinks seed counts and sweeps for CI-speed runs; the
//!   default runs the full EXPERIMENTS.md configuration.
//! * `--jobs N` sets the trial engine's worker threads (0 or omitted =
//!   auto-detect). Output is bit-identical for every `N`.
//! * `--json PATH` additionally writes the suite as a JSON document.
//! * `--trace-out DIR` dumps JSONL event traces of failed/outlier trials
//!   into DIR (inspect/replay them with `apf-cli trace`).
//! * `--progress` prints a live per-campaign progress line to stderr.
//! * `--profile` records wall-time spans (phases + analysis kernels) and
//!   prints per-kernel latency tables (also under `"kernels"` in `--json`).
//!   Timing-noisy; the deterministic tables are unaffected.
//! * `--list` prints the experiment registry and exits.
//!
//! Unknown experiments or flags are errors (exit code 2) — a typo must not
//! silently run the wrong subset.

use apf_bench::experiments::{self, ExpCtx, REGISTRY};
use apf_bench::report;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: harness [--quick] [--jobs N] [--json PATH] [--trace-out DIR] \
                     [--progress] [--profile] [--list] [e1 e2 ... | all]";

struct Options {
    quick: bool,
    jobs: usize,
    json: Option<String>,
    trace_out: Option<String>,
    progress: bool,
    profile: bool,
    list: bool,
    picks: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        jobs: 0,
        json: None,
        trace_out: None,
        progress: false,
        profile: false,
        list: false,
        picks: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v.parse().map_err(|_| format!("invalid --jobs value: {v}"))?;
            }
            "--json" => opts.json = Some(value("--json")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--progress" => opts.progress = true,
            "--profile" => opts.profile = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            f if f.starts_with('-') => return Err(format!("unknown flag: {f}")),
            _ => opts.picks.push(arg.clone()),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        println!("experiments:");
        for (id, desc, _) in REGISTRY {
            println!("  {id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let picks: Vec<String> = if opts.picks.is_empty() || opts.picks.iter().any(|p| p == "all") {
        REGISTRY.iter().map(|(id, _, _)| id.to_string()).collect()
    } else {
        opts.picks.clone()
    };
    // Validate everything before running anything: a typo must not waste a
    // half-finished (potentially hours-long) full run.
    for p in &picks {
        if experiments::find(p).is_none() {
            eprintln!("error: unknown experiment: {p} (see --list)\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let trace_out = opts.trace_out.as_ref().map(std::path::PathBuf::from);
    if let Some(dir) = &trace_out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create --trace-out dir {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    let ctx = ExpCtx {
        quick: opts.quick,
        jobs: opts.jobs,
        trace_out,
        progress: opts.progress,
        profile: opts.profile,
    };
    let jobs = ctx.engine().effective_jobs();
    println!(
        "APF experiment harness ({} mode, {} worker{}) — experiments: {}",
        if opts.quick { "quick" } else { "full" },
        jobs,
        if jobs == 1 { "" } else { "s" },
        picks.join(", ")
    );

    let t0 = Instant::now();
    let mut reports = Vec::new();
    for p in &picks {
        let run = experiments::find(p).expect("validated above");
        let report = run(&ctx);
        report.print();
        reports.push(report);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let trials: usize = reports.iter().map(|r| r.trials).sum();
    println!(
        "\ntotal: {} trials in {:.2}s ({:.1} trials/s, {} worker{})",
        trials,
        wall_s,
        if wall_s > 0.0 { trials as f64 / wall_s } else { 0.0 },
        jobs,
        if jobs == 1 { "" } else { "s" },
    );

    if let Some(path) = &opts.json {
        let doc = report::suite_json(&reports, opts.quick, jobs, wall_s);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
