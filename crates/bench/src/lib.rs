//! Experiment plumbing: reproducible formation runs, aggregate statistics,
//! and the E1–E9 experiment suite behind the `harness` binary.
//!
//! The paper is a theory paper with no evaluation section; every experiment
//! here is derived from one of its formal claims (see DESIGN.md's experiment
//! index and EXPERIMENTS.md for the claim ↔ measurement mapping).
//!
//! Single trials are described by [`engine::RunSpec`] and executed — alone
//! or in deterministic parallel [`engine::Campaign`]s — by
//! [`engine::Engine`]; see the [`engine`] module docs for the determinism
//! guarantee.

#![forbid(unsafe_code)]

pub mod engine;
pub mod experiments;
pub mod profile;
pub mod report;
pub mod spec;

use apf_sim::Outcome;
use apf_trace::PhaseKind;

/// One simulation run's distilled result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Whether the pattern was formed within the budget.
    pub formed: bool,
    /// Engine steps consumed.
    pub steps: u64,
    /// Look events (LCM cycles).
    pub cycles: u64,
    /// Random bits drawn.
    pub bits: u64,
    /// Total distance traveled.
    pub distance: f64,
    /// Cycles per algorithm phase (indexed by [`PhaseKind::index`]).
    pub phase_cycles: [u64; PhaseKind::COUNT],
    /// Random bits per algorithm phase (indexed by [`PhaseKind::index`]).
    pub phase_bits: [u64; PhaseKind::COUNT],
}

impl Default for RunResult {
    fn default() -> Self {
        RunResult {
            formed: false,
            steps: 0,
            cycles: 0,
            bits: 0,
            distance: 0.0,
            phase_cycles: [0; PhaseKind::COUNT],
            phase_bits: [0; PhaseKind::COUNT],
        }
    }
}

impl From<Outcome> for RunResult {
    fn from(o: Outcome) -> Self {
        let mut phase_cycles = [0u64; PhaseKind::COUNT];
        let mut phase_bits = [0u64; PhaseKind::COUNT];
        for kind in PhaseKind::ALL {
            let pm = o.metrics.phase(kind);
            phase_cycles[kind.index()] = pm.cycles;
            phase_bits[kind.index()] = pm.random_bits;
        }
        RunResult {
            formed: o.formed,
            steps: o.metrics.steps,
            cycles: o.metrics.cycles(),
            bits: o.metrics.random_bits(),
            distance: o.metrics.distance(),
            phase_cycles,
            phase_bits,
        }
    }
}

/// Aggregate statistics over a set of runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Number of runs.
    pub runs: usize,
    /// Fraction that formed the pattern in budget.
    pub success: f64,
    /// Mean cycles over successful runs.
    pub mean_cycles: f64,
    /// Median cycles over successful runs.
    pub median_cycles: f64,
    /// 95th-percentile cycles over successful runs.
    pub p95_cycles: f64,
    /// Mean random bits over successful runs.
    pub mean_bits: f64,
    /// Mean bits per cycle over successful runs.
    pub bits_per_cycle: f64,
}

impl Aggregate {
    /// Summarizes run results.
    pub fn of(results: &[RunResult]) -> Aggregate {
        let runs = results.len();
        let ok: Vec<&RunResult> = results.iter().filter(|r| r.formed).collect();
        let success = if runs == 0 { 0.0 } else { ok.len() as f64 / runs as f64 };
        let mut cycles: Vec<f64> = ok.iter().map(|r| r.cycles as f64).collect();
        cycles.sort_by(f64::total_cmp);
        let mean =
            |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
        let pct = |v: &[f64], q: f64| {
            if v.is_empty() {
                0.0
            } else {
                v[((v.len() as f64 - 1.0) * q).round() as usize]
            }
        };
        let mean_cycles = mean(&cycles);
        let mean_bits = mean(&ok.iter().map(|r| r.bits as f64).collect::<Vec<_>>());
        let total_cycles: f64 = ok.iter().map(|r| r.cycles as f64).sum();
        let total_bits: f64 = ok.iter().map(|r| r.bits as f64).sum();
        Aggregate {
            runs,
            success,
            mean_cycles,
            median_cycles: pct(&cycles, 0.5),
            p95_cycles: pct(&cycles, 0.95),
            mean_bits,
            bits_per_cycle: if total_cycles == 0.0 { 0.0 } else { total_bits / total_cycles },
        }
    }
}

/// Prints a fixed-width table: header row + data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunSpec;
    use apf_scheduler::SchedulerKind;

    #[test]
    fn aggregate_of_empty_is_zeroed() {
        let a = Aggregate::of(&[]);
        assert_eq!(a.runs, 0);
        assert_eq!(a.success, 0.0);
    }

    #[test]
    fn aggregate_statistics() {
        let r = |formed, cycles, bits| RunResult { formed, cycles, bits, ..RunResult::default() };
        let a = Aggregate::of(&[r(true, 10, 5), r(true, 30, 15), r(false, 99, 0)]);
        assert_eq!(a.runs, 3);
        assert!((a.success - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.mean_cycles - 20.0).abs() < 1e-12);
        assert!((a.bits_per_cycle - 0.5).abs() < 1e-12);
    }

    #[test]
    fn formation_run_smoke() {
        let r = RunSpec::new(
            apf_patterns::asymmetric_configuration(7, 5),
            apf_patterns::random_pattern(7, 6),
        )
        .scheduler(SchedulerKind::RoundRobin)
        .seed(1)
        .budget(100_000)
        .run();
        assert!(r.formed);
        assert!(r.cycles > 0);
    }
}
