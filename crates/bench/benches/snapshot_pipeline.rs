//! Criterion benchmark of one full Compute call: the entire per-Look
//! analysis pipeline of the paper's algorithm (analysis + dispatch).

use apf_core::FormPattern;
use apf_geometry::{Point, Tol};
use apf_sim::{NullBits, RobotAlgorithm, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn snapshot_for(pts: &[Point], me: usize, pattern: &[Point]) -> Snapshot {
    let off = pts[me];
    let local: Vec<Point> = pts.iter().map(|&p| (p - off).to_point()).collect();
    Snapshot::new(local, pattern.to_vec(), false, Tol::default())
}

fn bench_compute(c: &mut Criterion) {
    let alg = FormPattern::new();
    let mut group = c.benchmark_group("compute");
    for &n in &[8usize, 16, 32, 64] {
        // Asymmetric configuration: exercises the ψ_RSB|Qc branch.
        let pts = apf_patterns::asymmetric_configuration(n, 77 + n as u64);
        let pat = apf_patterns::random_pattern(n, 99 + n as u64);
        let snap = snapshot_for(&pts, 0, &pat);
        group.bench_with_input(BenchmarkId::new("qc_branch", n), &snap, |b, snap| {
            b.iter(|| {
                let mut bits = NullBits;
                alg.compute(std::hint::black_box(snap), &mut bits).unwrap()
            })
        });

        // Symmetric configuration: exercises the election branch.
        let rho = if n % 4 == 0 { 4 } else { 2 };
        let sym = apf_patterns::symmetric_configuration(n, rho, 55 + n as u64);
        let snap_sym = snapshot_for(&sym, 0, &pat);
        group.bench_with_input(BenchmarkId::new("election_branch", n), &snap_sym, |b, snap| {
            b.iter(|| {
                let mut bits = NullBits;
                alg.compute(std::hint::black_box(snap), &mut bits).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compute
}
criterion_main!(benches);
