//! Criterion micro-benchmarks of the geometric analysis kernels (E9's
//! precision companion): smallest enclosing circle, symmetricity, views,
//! regular-set detection, shifted-set detection, similarity testing.

use apf_geometry::symmetry::{find_shifted_regular, regular_set_of, symmetricity, ViewAnalysis};
use apf_geometry::{are_similar, smallest_enclosing_circle, Configuration, Point, Tol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::TAU;

fn shifted_ring(n: usize) -> Vec<Point> {
    let alpha = TAU / n as f64;
    (0..n)
        .map(|i| {
            let mut a = alpha * i as f64 + 0.3;
            if i == 1 {
                a += alpha / 8.0;
            }
            Point::new(a.cos(), a.sin())
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("geometry");
    for &n in &[8usize, 32, 128] {
        let pts = apf_patterns::asymmetric_configuration(n, n as u64);
        let cfg = Configuration::new(pts.clone());
        let center = cfg.sec().center;

        group.bench_with_input(BenchmarkId::new("sec", n), &pts, |b, pts| {
            b.iter(|| smallest_enclosing_circle(std::hint::black_box(pts)))
        });
        group.bench_with_input(BenchmarkId::new("symmetricity", n), &cfg, |b, cfg| {
            b.iter(|| symmetricity(std::hint::black_box(cfg), center, &tol))
        });
        group.bench_with_input(BenchmarkId::new("views", n), &cfg, |b, cfg| {
            b.iter(|| ViewAnalysis::compute(std::hint::black_box(cfg), center, &tol))
        });
        group.bench_with_input(BenchmarkId::new("regular_set", n), &cfg, |b, cfg| {
            b.iter(|| regular_set_of(std::hint::black_box(cfg), &tol))
        });

        let shifted = Configuration::new(shifted_ring(n));
        group.bench_with_input(BenchmarkId::new("shifted_detect", n), &shifted, |b, cfg| {
            b.iter(|| find_shifted_regular(std::hint::black_box(cfg), &tol))
        });

        let pat = apf_patterns::random_pattern(n, 2 * n as u64);
        group.bench_with_input(BenchmarkId::new("similarity", n), &(pts, pat), |b, (p, f)| {
            b.iter(|| are_similar(std::hint::black_box(p), std::hint::black_box(f), &tol))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
