//! Criterion benchmark of complete formation runs (end-to-end wall time),
//! comparing the paper's algorithm with the YY-style baseline.

use apf_baselines::YyStyleFormation;
use apf_core::SimulationBuilder;
use apf_scheduler::SchedulerKind;
use apf_sim::{World, WorldConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("formation");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        group.bench_with_input(BenchmarkId::new("ours_symmetric", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = SimulationBuilder::new(
                    apf_patterns::symmetric_configuration(n, 4, 1),
                    apf_patterns::random_pattern(n, 2),
                )
                .scheduler(SchedulerKind::RoundRobin)
                .seed(3)
                .build()
                .unwrap();
                let o = world.run(2_000_000);
                assert!(o.formed);
                o.metrics.cycles()
            })
        });
        group.bench_with_input(BenchmarkId::new("yy_symmetric", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = World::new(
                    apf_patterns::symmetric_configuration(n, 4, 1),
                    apf_patterns::random_pattern(n, 2),
                    Box::new(YyStyleFormation::new()),
                    SchedulerKind::RoundRobin.build(3),
                    WorldConfig::default(),
                    3,
                );
                let o = world.run(2_000_000);
                assert!(o.formed);
                o.metrics.cycles()
            })
        });
        group.bench_with_input(BenchmarkId::new("ours_asymmetric", n), &n, |b, &n| {
            b.iter(|| {
                let mut world = SimulationBuilder::new(
                    apf_patterns::asymmetric_configuration(n, 1),
                    apf_patterns::random_pattern(n, 2),
                )
                .scheduler(SchedulerKind::RoundRobin)
                .seed(3)
                .build()
                .unwrap();
                let o = world.run(2_000_000);
                assert!(o.formed);
                o.metrics.cycles()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_formation
}
criterion_main!(benches);
